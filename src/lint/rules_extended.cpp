/// \file rules_extended.cpp
/// The rules the retired regex linter could not express: include-graph
/// layering, ordering hazards (unordered-container iteration and raw
/// pointer comparisons feeding canonical output), generalized
/// exhaustive-enum switches, and mutable global state.

#include <algorithm>
#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/rule.hpp"
#include "lint/rules_detail.hpp"
#include "lint/structure.hpp"

namespace alert::analysis_tools {

namespace {

/// First path segment ("net/mac.hpp" -> "net"); empty for top-level files.
std::string module_of(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

struct Include {
  std::string path;  ///< the quoted operand, verbatim
  std::size_t line = 0;
};

/// Quoted includes of a file, parsed from preprocessor tokens (angle
/// includes are system headers — outside the layering DAG by definition).
std::vector<Include> quoted_includes(const FileData& file) {
  std::vector<Include> out;
  for (const Token& t : file.tokens) {
    if (t.kind != TokenKind::Preprocessor) continue;
    std::size_t i = t.text.find_first_not_of(" \t", 1);  // skip '#'
    if (i == std::string::npos ||
        t.text.compare(i, 7, "include") != 0) {
      continue;
    }
    const std::size_t open = t.text.find('"', i + 7);
    if (open == std::string::npos) continue;
    const std::size_t close = t.text.find('"', open + 1);
    if (close == std::string::npos) continue;
    out.push_back({t.text.substr(open + 1, close - open - 1), t.line});
  }
  return out;
}

/// module-layering: quoted includes must follow the allowed dependency DAG
/// (config.module_deps), and the file-level include graph must be acyclic.
/// ALERT's anonymity guarantees — like ANODR's route pseudonymity — rest on
/// nothing above the RNG/digest layers reaching around them; the DAG is
/// where that discipline is written down.
class ModuleLayeringRule final : public Rule {
 public:
  explicit ModuleLayeringRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"module-layering",
             "include edge violates the module dependency DAG",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish(const std::vector<FileData>& files, Sink& sink) override {
    std::map<std::string, const FileData*> by_path;
    for (const FileData& f : files) by_path[f.rel_path] = &f;

    // Edges resolved to scanned files, for cycle detection.
    std::map<std::string, std::vector<Include>> resolved;

    for (const FileData& f : files) {
      const std::string from = module_of(f.rel_path);
      for (const Include& inc : quoted_includes(f)) {
        // Root-relative is the repo convention; fall back to
        // include-relative for robustness.
        std::string target = inc.path;
        if (by_path.count(target) == 0) {
          const std::size_t slash = f.rel_path.rfind('/');
          const std::string sibling =
              slash == std::string::npos
                  ? inc.path
                  : f.rel_path.substr(0, slash + 1) + inc.path;
          if (by_path.count(sibling) != 0) target = sibling;
        }
        if (by_path.count(target) != 0) {
          resolved[f.rel_path].push_back({target, inc.line});
        }
        const std::string to = module_of(target);
        if (from.empty() || to.empty() || from == to) continue;
        const auto from_it = cfg_->module_deps.find(from);
        if (from_it == cfg_->module_deps.end()) {
          sink.emit(info_, f, inc.line, 1,
                    "module '" + from +
                        "' is not in the layering table — add it to the "
                        "dependency DAG (AnalyzerConfig::module_deps, "
                        "documented in docs/VERIFICATION.md)");
          continue;
        }
        if (cfg_->module_deps.count(to) == 0) {
          sink.emit(info_, f, inc.line, 1,
                    "included module '" + to +
                        "' is not in the layering table — add it to the "
                        "dependency DAG before depending on it");
          continue;
        }
        if (from_it->second.count(to) == 0) {
          std::vector<std::string> allowed(from_it->second.begin(),
                                           from_it->second.end());
          sink.emit(info_, f, inc.line, 1,
                    "layering violation: module '" + from +
                        "' may not include '" + to + "' (allowed: [" +
                        join(allowed) + "]) — this is a back-edge in the "
                        "dependency DAG");
        }
      }
    }

    // File-level cycle detection (DFS, three colours). A cycle inside one
    // module still breaks header self-sufficiency and rebuild sanity.
    std::map<std::string, int> colour;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    for (const FileData& f : files) {
      dfs(f.rel_path, by_path, resolved, colour, stack, sink);
    }
  }

 private:
  void dfs(const std::string& node,
           const std::map<std::string, const FileData*>& by_path,
           const std::map<std::string, std::vector<Include>>& resolved,
           std::map<std::string, int>& colour,
           std::vector<std::string>& stack, Sink& sink) {
    if (colour[node] != 0) return;
    colour[node] = 1;
    stack.push_back(node);
    const auto it = resolved.find(node);
    if (it != resolved.end()) {
      for (const Include& edge : it->second) {
        if (colour[edge.path] == 1) {
          // Grey target: the stack from that node to here is a cycle.
          std::string cycle;
          bool in_cycle = false;
          for (const std::string& s : stack) {
            if (s == edge.path) in_cycle = true;
            if (in_cycle) cycle += s + " -> ";
          }
          cycle += edge.path;
          sink.emit(info_, *by_path.at(node), edge.line, 1,
                    "include cycle: " + cycle);
        } else {
          dfs(edge.path, by_path, resolved, colour, stack, sink);
        }
      }
    }
    stack.pop_back();
    colour[node] = 2;
  }

  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// Names declared in this file with std::unordered_* types (or, for
/// kPointerContainers below, sequence-of-pointer types). Token heuristic:
/// `unordered_map < ... > [&*const]* name`.
std::set<std::string> declared_container_names(
    const CodeView& v, const std::set<std::string>& type_names,
    bool require_pointer_element) {
  std::set<std::string> names;
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v.tok(i).kind != TokenKind::Identifier ||
        type_names.count(v.tok(i).text) == 0 || !v.is_punct(i + 1, "<")) {
      continue;
    }
    // Find the matching '>' (">>" closes two levels).
    std::size_t depth = 0;
    std::size_t j = i + 1;
    bool element_is_pointer = false;
    for (; j < v.size(); ++j) {
      const std::string& t = v.tok(j).text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        if (--depth == 0) break;
      } else if (t == ">>") {
        if (depth <= 2) { depth = 0; break; }
        depth -= 2;
      } else if (depth == 1 && t == "*") {
        element_is_pointer = true;
      }
    }
    if (j >= v.size()) continue;
    if (require_pointer_element && !element_is_pointer) continue;
    std::size_t k = j + 1;
    while (v.is_punct(k, "&") || v.is_punct(k, "*") ||
           v.is_ident(k, "const")) {
      ++k;
    }
    if (k < v.size() && v.tok(k).kind == TokenKind::Identifier) {
      names.insert(v.tok(k).text);
    }
  }
  return names;
}

/// unordered-iteration-ordering: range-for / iterator loops over
/// std::unordered_{map,set} in files that feed canonical or digest output
/// (scenario codec, experiment aggregation, manifests, cache keys) — hash
/// iteration order is implementation-defined, so it silently breaks
/// bit-reproducibility. Iterate a sorted copy or use an ordered container.
class UnorderedIterationRule final : public Rule {
 public:
  explicit UnorderedIterationRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"unordered-iteration-ordering",
             "unordered-container iteration in a canonical-output path",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    if (!AnalyzerConfig::path_in(file.rel_path, cfg_->digest_sensitive_dirs))
      return;
    static const std::set<std::string> kUnordered{
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    const CodeView v(file);
    const std::set<std::string> names =
        declared_container_names(v, kUnordered, false);
    if (names.empty()) return;

    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      // Range-for whose sequence expression ends in a declared name.
      if (v.is_ident(i, "for") && v.is_punct(i + 1, "(")) {
        const std::size_t close = v.matching(i + 1, "(", ")");
        std::size_t depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          const std::string& t = v.tok(j).text;
          if (t == "(" || t == "[" || t == "{") {
            ++depth;
          } else if (t == ")" || t == "]" || t == "}") {
            --depth;
          } else if (t == ":" && depth == 1) {
            std::vector<std::string> chain;
            if (read_member_chain(v, j + 1, &chain) == close &&
                !chain.empty() && names.count(chain.back()) != 0) {
              sink.emit(info_, file, v.tok(i).line, v.tok(i).column,
                        "range-for over std::unordered_* '" + chain.back() +
                            "' feeds canonical/digest output — iteration "
                            "order is implementation-defined; iterate a "
                            "sorted copy or use an ordered container");
            }
            break;
          }
        }
      }
      // Explicit iterator loops / ordered extraction: name.begin()/cbegin().
      if (v.tok(i).kind == TokenKind::Identifier &&
          names.count(v.tok(i).text) != 0 && !v.prev_is_accessor(i) &&
          (v.is_punct(i + 1, ".") || v.is_punct(i + 1, "->")) &&
          (v.is_ident(i + 2, "begin") || v.is_ident(i + 2, "cbegin")) &&
          v.is_punct(i + 3, "(")) {
        sink.emit(info_, file, v.tok(i).line, v.tok(i).column,
                  "iterator over std::unordered_* '" + v.tok(i).text +
                      "' feeds canonical/digest output — iteration order "
                      "is implementation-defined; iterate a sorted copy "
                      "or use an ordered container");
      }
    }
  }

 private:
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// pointer-ordering: sorts or ordered containers keyed on raw pointer
/// values. Pointer order is allocation order — it varies run to run, so
/// any output derived from it is nondeterministic (ASLR makes it worse).
class PointerOrderingRule final : public Rule {
 public:
  PointerOrderingRule() {
    info_ = {"pointer-ordering",
             "ordering keyed on raw pointer values", Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    const CodeView v(file);
    static const std::set<std::string> kSequences{"vector", "array", "deque"};
    const std::set<std::string> ptr_sequences =
        declared_container_names(v, kSequences, true);

    for (std::size_t i = 0; i + 2 < v.size(); ++i) {
      if (!v.is_ident(i, "std") || !v.is_punct(i + 1, "::")) continue;
      const std::string& name = v.tok(i + 2).text;
      if ((name == "map" || name == "set" || name == "multimap" ||
           name == "multiset") &&
          v.is_punct(i + 3, "<")) {
        check_assoc(v, file, sink, i, name);
      } else if (name == "less" && v.is_punct(i + 3, "<")) {
        const std::vector<std::vector<std::string>> args =
            template_args(v, i + 3);
        if (!args.empty() && !args[0].empty() && args[0].back() == "*") {
          sink.emit(info_, file, v.tok(i).line, v.tok(i).column,
                    "std::less over a raw pointer type orders by address — "
                    "nondeterministic across runs; compare a stable id "
                    "instead");
        }
      } else if ((name == "sort" || name == "stable_sort") &&
                 v.is_punct(i + 3, "(")) {
        check_sort(v, file, sink, i, ptr_sequences);
      }
    }
  }

 private:
  /// Top-level template arguments of the list opening at `open_i` ('<'),
  /// each as its token texts.
  static std::vector<std::vector<std::string>> template_args(
      const CodeView& v, std::size_t open_i) {
    std::vector<std::vector<std::string>> args(1);
    std::size_t depth = 0;
    for (std::size_t j = open_i; j < v.size(); ++j) {
      const std::string& t = v.tok(j).text;
      if (t == "<") {
        if (depth++ != 0) args.back().push_back(t);
      } else if (t == ">" || t == ">>") {
        const std::size_t dec = t == ">" ? 1 : 2;
        if (depth <= dec) return args;
        depth -= dec;
        args.back().push_back(t);
      } else if (t == "," && depth == 1) {
        args.emplace_back();
      } else if (depth >= 1) {
        args.back().push_back(t);
      }
    }
    return {};
  }

  void check_assoc(const CodeView& v, const FileData& file, Sink& sink,
                   std::size_t i, const std::string& name) {
    const std::vector<std::vector<std::string>> args =
        template_args(v, i + 3);
    if (args.empty() || args[0].empty() || args[0].back() != "*") return;
    const std::size_t comparator_pos =
        (name == "map" || name == "multimap") ? 2 : 1;
    if (args.size() > comparator_pos) return;  // custom comparator given
    sink.emit(info_, file, v.tok(i).line, v.tok(i).column,
              "std::" + name +
                  " keyed on a raw pointer orders by address — iteration "
                  "is nondeterministic across runs; key on a stable id or "
                  "supply a comparator over stable fields");
  }

  void check_sort(const CodeView& v, const FileData& file, Sink& sink,
                  std::size_t i, const std::set<std::string>& ptr_sequences) {
    const std::size_t close = v.matching(i + 3, "(", ")");
    if (close == v.size()) return;
    // Default comparator = exactly one top-level comma (two arguments).
    std::size_t commas = 0;
    std::size_t depth = 0;
    for (std::size_t j = i + 3; j < close; ++j) {
      const std::string& t = v.tok(j).text;
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
      } else if (t == ")" || t == "]" || t == "}") {
        --depth;
      } else if (t == "," && depth == 1) {
        ++commas;
      }
    }
    if (commas != 1) return;
    // First argument of the form <name>.begin() with a pointer-element
    // sequence container.
    const std::size_t a = i + 4;
    if (a < close && v.tok(a).kind == TokenKind::Identifier &&
        ptr_sequences.count(v.tok(a).text) != 0 &&
        (v.is_punct(a + 1, ".") || v.is_punct(a + 1, "->")) &&
        v.is_ident(a + 2, "begin")) {
      sink.emit(info_, file, v.tok(i).line, v.tok(i).column,
                "sorting a container of raw pointers with the default "
                "comparator orders by address — nondeterministic across "
                "runs; sort by a stable field instead");
    }
  }

  RuleInfo info_;
};

/// exhaustive-enum: any enum whose definition carries an
/// `// alert-lint: exhaustive-enum` tag (same line or the line above) gets
/// the DropReason treatment — every switch over it must name every
/// enumerator and must not carry `default:`; re-declarations of a tagged
/// enum elsewhere must stay in sync with the first declaration.
class ExhaustiveEnumRule final : public Rule {
 public:
  ExhaustiveEnumRule() {
    info_ = {"exhaustive-enum",
             "non-exhaustive or defaulted switch over a tagged enum",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish(const std::vector<FileData>& files, Sink& sink) override {
    struct Decl {
      const FileData* file;
      std::size_t line;
      std::vector<std::string> enumerators;
    };
    std::map<std::string, Decl> tagged;

    for (const FileData& f : files) {
      std::set<std::size_t> tag_lines;
      for (const Token& t : f.tokens) {
        if ((t.kind == TokenKind::LineComment ||
             t.kind == TokenKind::BlockComment) &&
            t.text.find("alert-lint:") != std::string::npos &&
            t.text.find("exhaustive-enum") != std::string::npos &&
            t.text.find("allow") == std::string::npos) {
          tag_lines.insert(t.line);
        }
      }
      if (tag_lines.empty()) continue;
      const CodeView v(f);
      for (std::size_t i = 0; i < v.size(); ++i) {
        std::string name;
        std::vector<std::string> enumerators;
        std::size_t line = 0;
        if (!v.is_ident(i, "enum") ||
            !parse_enum_definition(v, i, &name, &enumerators, &line)) {
          continue;
        }
        if (tag_lines.count(line) == 0 && tag_lines.count(line - 1) == 0)
          continue;
        if (name == "DropReason") continue;  // dedicated rule owns it
        const auto it = tagged.find(name);
        if (it == tagged.end()) {
          tagged.emplace(name, Decl{&f, line, std::move(enumerators)});
        } else if (it->second.enumerators != enumerators) {
          sink.emit(info_, f, line, 1,
                    "tagged enum '" + name +
                        "' declares [" + join(enumerators) +
                        "] but its first declaration (" +
                        it->second.file->rel_path + ":" +
                        std::to_string(it->second.line) + ") declares [" +
                        join(it->second.enumerators) +
                        "] — keep tagged declarations in sync");
        }
      }
    }
    if (tagged.empty()) return;

    for (const FileData& f : files) {
      const CodeView v(f);
      for (const SwitchInfo& sw : collect_switches(v)) {
        // Which tagged enum (if any) does this switch handle?
        for (const auto& [name, decl] : tagged) {
          std::set<std::string> cases;
          for (const auto& [type, enumerator] : sw.cases) {
            if (type == name) cases.insert(enumerator);
          }
          if (cases.empty()) continue;
          if (sw.has_default) {
            sink.emit(info_, f, sw.line, sw.column,
                      "'default:' in a switch over tagged enum '" + name +
                          "' swallows newly added enumerators — enumerate "
                          "every case instead");
          }
          std::vector<std::string> missing;
          for (const std::string& e : decl.enumerators) {
            if (cases.count(e) == 0) missing.push_back(e);
          }
          if (!missing.empty()) {
            sink.emit(info_, f, sw.line, sw.column,
                      "switch over tagged enum '" + name +
                          "' is missing case(s): " + join(missing));
          }
        }
      }
    }
  }

 private:
  RuleInfo info_;
};

/// mutable-global: non-const namespace-scope variables, function-local
/// statics and static data members hold state that outlives a replication —
/// exactly what makes runs order-dependent and replications non-independent.
/// Sanctioned process-wide state (the log level, the check failure handler)
/// lives in allowlisted files; everything else needs a waiver or a fix.
class MutableGlobalRule final : public Rule {
 public:
  explicit MutableGlobalRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"mutable-global",
             "mutable static-storage state outside the allowlist",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    if (AnalyzerConfig::path_in(file.rel_path,
                                cfg_->mutable_global_allowlist)) {
      return;
    }
    const CodeView v(file);
    std::vector<Ctx> stack{Ctx::Namespace};  // translation-unit scope
    std::vector<std::size_t> stmt;           // code-token indices
    std::size_t paren_depth = 0;

    auto contains = [&](const char* word) {
      return std::any_of(stmt.begin(), stmt.end(), [&](std::size_t k) {
        return v.tok(k).text == word;
      });
    };

    for (std::size_t i = 0; i < v.size(); ++i) {
      const std::string& t = v.tok(i).text;
      const bool in_init = stack.back() == Ctx::Init;
      if (t == "{") {
        if (in_init) {
          stack.push_back(Ctx::Init);  // nested braces of an initializer
          continue;
        }
        Ctx ctx = Ctx::Function;  // plain blocks behave like function bodies
        const bool control_tail =
            !stmt.empty() && (v.tok(stmt.back()).text == "do" ||
                              v.tok(stmt.back()).text == "else" ||
                              v.tok(stmt.back()).text == "try");
        if (contains("namespace")) {
          ctx = Ctx::Namespace;
        } else if (contains("class") || contains("struct") ||
                   contains("union") || contains("enum")) {
          ctx = Ctx::Class;
        } else if (control_tail || contains("(")) {
          ctx = Ctx::Function;
        } else if (!stmt.empty() &&
                   (contains("=") ||
                    v.tok(stmt.back()).kind == TokenKind::Identifier ||
                    v.tok(stmt.back()).text == ">")) {
          // Braced initializer: `T name{...}` / `T name = {...}`.
          stack.push_back(Ctx::Init);
          continue;  // the statement continues past the initializer
        }
        stack.push_back(ctx);
        stmt.clear();
        paren_depth = 0;
        continue;
      }
      if (t == "}") {
        const bool was_init = stack.back() == Ctx::Init;
        if (stack.size() > 1) stack.pop_back();
        if (!was_init) {
          stmt.clear();
          paren_depth = 0;
        }
        continue;
      }
      if (in_init) continue;  // initializer contents are not declarations
      if (t == "(") ++paren_depth;
      if (t == ")" && paren_depth > 0) --paren_depth;
      if (t == ";" && paren_depth == 0) {
        evaluate(v, file, sink, stack.back(), stmt);
        stmt.clear();
        continue;
      }
      stmt.push_back(i);
    }
  }

 private:
  enum class Ctx { Namespace, Class, Function, Init };

  void evaluate(const CodeView& v, const FileData& file, Sink& sink, Ctx ctx,
                const std::vector<std::size_t>& stmt) {
    if (stmt.empty()) return;
    static const std::set<std::string> kNotAVariable{
        "using",    "typedef",  "namespace", "class",   "struct",
        "union",    "enum",     "template",  "friend",  "extern",
        "operator", "concept",  "requires",  "public",  "private",
        "protected", "static_assert", "return", "goto", "case",
        "default",  "if",       "while",     "for",     "switch",
        "do",       "else",     "break",     "continue", "throw",
        "delete",   "new",      "co_return", "co_yield", "co_await"};
    // Declaration part: tokens before the first top-level '='.
    std::vector<std::size_t> decl;
    std::size_t depth = 0;
    for (const std::size_t k : stmt) {
      const std::string& t = v.tok(k).text;
      if (t == "(" || t == "[") ++depth;
      if ((t == ")" || t == "]") && depth > 0) --depth;
      if (t == "=" && depth == 0) break;
      decl.push_back(k);
    }
    bool has_const = false;
    bool has_static = false;
    bool has_paren = false;
    std::size_t name_tokens = 0;
    std::size_t last_name = v.size();
    for (const std::size_t k : decl) {
      const Token& tok = v.tok(k);
      if (tok.kind == TokenKind::Identifier) {
        if (kNotAVariable.count(tok.text) != 0) return;
        if (tok.text == "const" || tok.text == "constexpr" ||
            tok.text == "constinit") {
          has_const = true;
        } else if (tok.text == "static") {
          has_static = true;
        } else {
          ++name_tokens;
          last_name = k;
        }
      } else if (tok.text == "(") {
        has_paren = true;
      }
    }
    // `type name` minimum; parens mean a function declaration or a
    // call-style macro; const/constexpr state is fine anywhere.
    if (has_const || has_paren || name_tokens < 2 || last_name == v.size())
      return;
    const std::string name = v.tok(last_name).text;
    const Token& at = v.tok(stmt.front());
    if (ctx == Ctx::Namespace) {
      sink.emit(info_, file, at.line, at.column,
                "mutable namespace-scope state '" + name +
                    "' — globals couple replications and break run "
                    "independence; make it const/constexpr, move it into "
                    "an object threaded through callers, or waive "
                    "deliberate process-wide state");
    } else if (has_static) {
      sink.emit(info_, file, at.line, at.column,
                ctx == Ctx::Class
                    ? "mutable static data member '" + name +
                          "' — static members are process-wide state; "
                          "make it const/constexpr or move it into the "
                          "instance"
                    : "function-local static mutable state '" + name +
                          "' — survives across replications; hoist it "
                          "into an object threaded through callers or "
                          "waive it deliberately");
    }
  }

  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

}  // namespace

namespace detail {

std::unique_ptr<Rule> make_module_layering(const AnalyzerConfig& c) {
  return std::make_unique<ModuleLayeringRule>(c);
}
std::unique_ptr<Rule> make_unordered_iteration(const AnalyzerConfig& c) {
  return std::make_unique<UnorderedIterationRule>(c);
}
std::unique_ptr<Rule> make_pointer_ordering() {
  return std::make_unique<PointerOrderingRule>();
}
std::unique_ptr<Rule> make_exhaustive_enum() {
  return std::make_unique<ExhaustiveEnumRule>();
}
std::unique_ptr<Rule> make_mutable_global(const AnalyzerConfig& c) {
  return std::make_unique<MutableGlobalRule>(c);
}

}  // namespace detail

}  // namespace alert::analysis_tools
