#include "lint/analyzer.hpp"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "lint/baseline.hpp"
#include "lint/callgraph.hpp"
#include "lint/index.hpp"
#include "lint/lockgraph.hpp"
#include "lint/rules.hpp"
#include "obs/profile.hpp"
#include "util/thread_pool.hpp"

namespace alert::analysis_tools {

namespace fs = std::filesystem;

namespace {

bool is_cxx_source(const fs::path& p) {
  static const std::set<std::string> kExts{".cpp", ".cc", ".cxx",
                                           ".hpp", ".hh", ".h"};
  return kExts.count(p.extension().string()) != 0;
}

bool is_header(const std::string& rel_path) {
  const std::size_t dot = rel_path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = rel_path.substr(dot);
  return ext == ".hpp" || ext == ".hh" || ext == ".h";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// Compile `root/rel` standalone, Python-linter style: a throwaway TU that
/// includes the header, so include guards and `#pragma once` behave exactly
/// as they do in real consumers. Returns the first error line on failure.
bool header_compiles(const std::string& cxx, const std::string& root,
                     const std::string& rel, std::string* first_error) {
  const fs::path tu = fs::temp_directory_path() /
                      ("alertsim-analyzer-self-sufficiency-" +
                       std::to_string(static_cast<unsigned>(::getpid())) +
                       ".cpp");
  {
    std::ofstream out(tu);
    out << "#include \"" << rel << "\"\n";
  }
  const std::string cmd = cxx + " -std=c++20 -fsyntax-only -I '" + root +
                          "' '" + tu.string() + "' 2>&1";
  std::string output;
  if (FILE* pipe = ::popen(cmd.c_str(), "r")) {
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
      output.append(buf, n);
    }
    const int status = ::pclose(pipe);
    std::error_code ec;
    fs::remove(tu, ec);
    if (status == 0) return true;
  } else {
    std::error_code ec;
    fs::remove(tu, ec);
    *first_error = "failed to launch '" + cxx + "'";
    return false;
  }
  std::istringstream lines(output);
  std::string line;
  *first_error = output.substr(0, output.find('\n'));
  while (std::getline(lines, line)) {
    if (line.find("error") != std::string::npos) {
      *first_error = line;
      break;
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> discover_sources(const std::string& root) {
  std::vector<std::string> out;
  const fs::path base(root);
  std::error_code ec;
  for (fs::recursive_directory_iterator it(base, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file() || !is_cxx_source(it->path())) continue;
    out.push_back(it->path().lexically_relative(base).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RuleInfo> rule_catalog(const AnalyzerConfig& config) {
  std::vector<RuleInfo> out;
  for (const auto& rule : make_default_rules(config)) {
    out.push_back(rule->info());
  }
  out.push_back({"header-self-sufficiency",
                 "header does not compile standalone", Severity::Error});
  std::sort(out.begin(), out.end(),
            [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; });
  return out;
}

AnalyzeResult analyze(const AnalyzerOptions& options) {
  AnalyzeResult result;
  std::vector<std::string> paths = discover_sources(options.root);
  if (!options.exclude_paths.empty()) {
    std::erase_if(paths, [&](const std::string& p) {
      return AnalyzerConfig::path_in(p, options.exclude_paths);
    });
  }

  // Lex and index everything in parallel; rules keep no per-file state, so
  // their check_file passes run concurrently too (Sink is the only shared
  // object and it locks internally). The per-file index slices feed the
  // whole-program ProgramIndex/CallGraph, built once and shared by every
  // rule's finish_program pass.
  std::vector<std::unique_ptr<Rule>> rules = make_default_rules(options.config);
  if (!options.disabled_rules.empty()) {
    const std::set<std::string> off(options.disabled_rules.begin(),
                                    options.disabled_rules.end());
    std::erase_if(rules, [&](const std::unique_ptr<Rule>& r) {
      return off.count(r->info().id) != 0;
    });
  }
  Sink sink(options.config);
  result.files.resize(paths.size());
  std::vector<FileIndex> slices(paths.size());
  // Per-rule wall time, accumulated across phases (atomically in the
  // parallel phase — every worker adds its own check_file time).
  std::vector<std::atomic<std::uint64_t>> rule_ns(rules.size());
  {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(paths.size(), [&](std::size_t i) {
      const fs::path full = fs::path(options.root) / paths[i];
      // Disjoint by construction: task i owns slot i of the pre-sized
      // vectors, so the resize above and these writes never race.
      result.files[i] =  // alert-lint: allow(lock-discipline)
          build_file_data(paths[i], read_file(full));
      slices[i] =
          index_file(result.files[i], options.config.worker_entry_points);
      for (std::size_t ri = 0; ri < rules.size(); ++ri) {
        const std::uint64_t t0 = obs::monotonic_ns();
        rules[ri]->check_file(result.files[i], sink);
        rule_ns[ri].fetch_add(obs::monotonic_ns() - t0,
                              std::memory_order_relaxed);
      }
    });
  }
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const std::uint64_t t0 = obs::monotonic_ns();
    rules[r]->finish(result.files, sink);
    rule_ns[r].fetch_add(obs::monotonic_ns() - t0,
                         std::memory_order_relaxed);
  }
  {
    const ProgramIndex index(result.files, std::move(slices));
    const CallGraph graph(index, &options.config);
    for (std::size_t r = 0; r < rules.size(); ++r) {
      const std::uint64_t t0 = obs::monotonic_ns();
      rules[r]->finish_program(index, graph, sink);
      rule_ns[r].fetch_add(obs::monotonic_ns() - t0,
                           std::memory_order_relaxed);
    }
    // The acquisition-order proof artifact rides along with every scan —
    // an acyclic rendering is exactly what reviewers gate the PDES arc on.
    result.lock_graph_dot = LockGraph(index, graph).to_dot();
  }

  // Header self-sufficiency is compiler-backed, not token-backed: every
  // header must compile in a TU of its own, matching the retired linter.
  if (options.check_headers) {
    const RuleInfo header_info{"header-self-sufficiency",
                               "header does not compile standalone",
                               Severity::Error};
    std::string cxx = options.cxx;
    if (cxx.empty()) {
      const char* env = std::getenv("CXX");
      cxx = env != nullptr && *env != '\0' ? env : "g++";
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (!is_header(paths[i])) continue;
      std::string first_error;
      if (!header_compiles(cxx, options.root, paths[i], &first_error)) {
        sink.emit(header_info, result.files[i], 1, 1,
                  "header does not compile standalone: " + first_error);
      }
    }
  }

  std::vector<Finding> findings = sink.take();
  result.report.files_scanned = paths.size();
  result.report.waived = sink.waived_count();

  // --stats accounting: findings are attributed pre-baseline (the cost of
  // a rule includes the findings it grandfathers), sorted by wall time so
  // the expensive rules lead.
  {
    std::map<std::string, std::size_t> findings_by_rule;
    for (const Finding& f : findings) ++findings_by_rule[f.rule];
    for (std::size_t r = 0; r < rules.size(); ++r) {
      RuleStat stat;
      stat.id = rules[r]->info().id;
      stat.wall_ns = rule_ns[r].load(std::memory_order_relaxed);
      stat.findings = findings_by_rule[stat.id];
      result.rule_stats.push_back(std::move(stat));
    }
    if (findings_by_rule.count("header-self-sufficiency") != 0) {
      result.rule_stats.push_back(
          {"header-self-sufficiency", 0,
           findings_by_rule["header-self-sufficiency"]});
    }
    std::sort(result.rule_stats.begin(), result.rule_stats.end(),
              [](const RuleStat& a, const RuleStat& b) {
                return a.wall_ns != b.wall_ns ? a.wall_ns > b.wall_ns
                                              : a.id < b.id;
              });
  }

  // Baseline pass: grandfathered findings drop out; entries that match
  // nothing are reported as stale (except in diff mode, where most of the
  // tree is filtered and entries legitimately idle).
  Baseline baseline = Baseline::parse(options.baseline_text,
                                      &result.baseline_errors);
  std::map<std::string, const FileData*> by_path;
  for (const FileData& f : result.files) by_path[f.rel_path] = &f;
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    const auto it = by_path.find(f.path);
    const std::string_view line_text =
        it == by_path.end()
            ? std::string_view()
            : source_line_text(it->second->source, f.line);
    if (baseline.absorbs(f, line_text)) {
      ++result.report.baseline_applied;
    } else {
      kept.push_back(std::move(f));
    }
  }

  if (!options.only_paths.empty()) {
    const std::set<std::string> only(options.only_paths.begin(),
                                     options.only_paths.end());
    std::erase_if(kept,
                  [&](const Finding& f) { return only.count(f.path) == 0; });
  } else {
    for (const BaselineEntry* e : baseline.stale()) {
      result.report.stale_baseline.push_back(e->rule + " " + e->path +
                                             " — " + e->reason);
    }
    if (!options.baseline_text.empty()) {
      result.pruned_baseline_text = baseline.prune(options.baseline_text);
    }
  }
  result.report.findings = std::move(kept);
  return result;
}

}  // namespace alert::analysis_tools
