#include "lint/analyzer.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "lint/baseline.hpp"
#include "lint/callgraph.hpp"
#include "lint/index.hpp"
#include "lint/rules.hpp"
#include "util/thread_pool.hpp"

namespace alert::analysis_tools {

namespace fs = std::filesystem;

namespace {

bool is_cxx_source(const fs::path& p) {
  static const std::set<std::string> kExts{".cpp", ".cc", ".cxx",
                                           ".hpp", ".hh", ".h"};
  return kExts.count(p.extension().string()) != 0;
}

bool is_header(const std::string& rel_path) {
  const std::size_t dot = rel_path.rfind('.');
  if (dot == std::string::npos) return false;
  const std::string ext = rel_path.substr(dot);
  return ext == ".hpp" || ext == ".hh" || ext == ".h";
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// Compile `root/rel` standalone, Python-linter style: a throwaway TU that
/// includes the header, so include guards and `#pragma once` behave exactly
/// as they do in real consumers. Returns the first error line on failure.
bool header_compiles(const std::string& cxx, const std::string& root,
                     const std::string& rel, std::string* first_error) {
  const fs::path tu = fs::temp_directory_path() /
                      ("alertsim-analyzer-self-sufficiency-" +
                       std::to_string(static_cast<unsigned>(::getpid())) +
                       ".cpp");
  {
    std::ofstream out(tu);
    out << "#include \"" << rel << "\"\n";
  }
  const std::string cmd = cxx + " -std=c++20 -fsyntax-only -I '" + root +
                          "' '" + tu.string() + "' 2>&1";
  std::string output;
  if (FILE* pipe = ::popen(cmd.c_str(), "r")) {
    char buf[4096];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) {
      output.append(buf, n);
    }
    const int status = ::pclose(pipe);
    std::error_code ec;
    fs::remove(tu, ec);
    if (status == 0) return true;
  } else {
    std::error_code ec;
    fs::remove(tu, ec);
    *first_error = "failed to launch '" + cxx + "'";
    return false;
  }
  std::istringstream lines(output);
  std::string line;
  *first_error = output.substr(0, output.find('\n'));
  while (std::getline(lines, line)) {
    if (line.find("error") != std::string::npos) {
      *first_error = line;
      break;
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> discover_sources(const std::string& root) {
  std::vector<std::string> out;
  const fs::path base(root);
  std::error_code ec;
  for (fs::recursive_directory_iterator it(base, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file() || !is_cxx_source(it->path())) continue;
    out.push_back(it->path().lexically_relative(base).generic_string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<RuleInfo> rule_catalog(const AnalyzerConfig& config) {
  std::vector<RuleInfo> out;
  for (const auto& rule : make_default_rules(config)) {
    out.push_back(rule->info());
  }
  out.push_back({"header-self-sufficiency",
                 "header does not compile standalone", Severity::Error});
  std::sort(out.begin(), out.end(),
            [](const RuleInfo& a, const RuleInfo& b) { return a.id < b.id; });
  return out;
}

AnalyzeResult analyze(const AnalyzerOptions& options) {
  AnalyzeResult result;
  std::vector<std::string> paths = discover_sources(options.root);
  if (!options.exclude_paths.empty()) {
    std::erase_if(paths, [&](const std::string& p) {
      return AnalyzerConfig::path_in(p, options.exclude_paths);
    });
  }

  // Lex and index everything in parallel; rules keep no per-file state, so
  // their check_file passes run concurrently too (Sink is the only shared
  // object and it locks internally). The per-file index slices feed the
  // whole-program ProgramIndex/CallGraph, built once and shared by every
  // rule's finish_program pass.
  std::vector<std::unique_ptr<Rule>> rules = make_default_rules(options.config);
  if (!options.disabled_rules.empty()) {
    const std::set<std::string> off(options.disabled_rules.begin(),
                                    options.disabled_rules.end());
    std::erase_if(rules, [&](const std::unique_ptr<Rule>& r) {
      return off.count(r->info().id) != 0;
    });
  }
  Sink sink(options.config);
  result.files.resize(paths.size());
  std::vector<FileIndex> slices(paths.size());
  {
    util::ThreadPool pool(options.threads);
    pool.parallel_for(paths.size(), [&](std::size_t i) {
      const fs::path full = fs::path(options.root) / paths[i];
      // Disjoint by construction: task i owns slot i of the pre-sized
      // vectors, so the resize above and these writes never race.
      result.files[i] =  // alert-lint: allow(lock-discipline)
          build_file_data(paths[i], read_file(full));
      slices[i] =
          index_file(result.files[i], options.config.worker_entry_points);
      for (const auto& rule : rules) {
        rule->check_file(result.files[i], sink);
      }
    });
  }
  for (const auto& rule : rules) {
    rule->finish(result.files, sink);
  }
  {
    const ProgramIndex index(result.files, std::move(slices));
    const CallGraph graph(index, &options.config);
    for (const auto& rule : rules) {
      rule->finish_program(index, graph, sink);
    }
  }

  // Header self-sufficiency is compiler-backed, not token-backed: every
  // header must compile in a TU of its own, matching the retired linter.
  if (options.check_headers) {
    const RuleInfo header_info{"header-self-sufficiency",
                               "header does not compile standalone",
                               Severity::Error};
    std::string cxx = options.cxx;
    if (cxx.empty()) {
      const char* env = std::getenv("CXX");
      cxx = env != nullptr && *env != '\0' ? env : "g++";
    }
    for (std::size_t i = 0; i < paths.size(); ++i) {
      if (!is_header(paths[i])) continue;
      std::string first_error;
      if (!header_compiles(cxx, options.root, paths[i], &first_error)) {
        sink.emit(header_info, result.files[i], 1, 1,
                  "header does not compile standalone: " + first_error);
      }
    }
  }

  std::vector<Finding> findings = sink.take();
  result.report.files_scanned = paths.size();
  result.report.waived = sink.waived_count();

  // Baseline pass: grandfathered findings drop out; entries that match
  // nothing are reported as stale (except in diff mode, where most of the
  // tree is filtered and entries legitimately idle).
  Baseline baseline = Baseline::parse(options.baseline_text,
                                      &result.baseline_errors);
  std::map<std::string, const FileData*> by_path;
  for (const FileData& f : result.files) by_path[f.rel_path] = &f;
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    const auto it = by_path.find(f.path);
    const std::string_view line_text =
        it == by_path.end()
            ? std::string_view()
            : source_line_text(it->second->source, f.line);
    if (baseline.absorbs(f, line_text)) {
      ++result.report.baseline_applied;
    } else {
      kept.push_back(std::move(f));
    }
  }

  if (!options.only_paths.empty()) {
    const std::set<std::string> only(options.only_paths.begin(),
                                     options.only_paths.end());
    std::erase_if(kept,
                  [&](const Finding& f) { return only.count(f.path) == 0; });
  } else {
    for (const BaselineEntry* e : baseline.stale()) {
      result.report.stale_baseline.push_back(e->rule + " " + e->path +
                                             " — " + e->reason);
    }
  }
  result.report.findings = std::move(kept);
  return result;
}

}  // namespace alert::analysis_tools
