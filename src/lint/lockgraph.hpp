#pragma once

/// \file lockgraph.hpp
/// Program-wide lock-acquisition-order graph, the static deadlock proof the
/// PDES arc (ROADMAP item 3) gates on. Nodes are qualified mutex names;
/// an edge A -> B means some execution acquires B while holding A. Edges
/// come from two places:
///
///   * intraprocedural — a LockSite whose `held` set (RAII scope nesting,
///     which is acquisition order for lock guards) is non-empty;
///   * interprocedural — a call site executed under held locks whose callee
///     may (transitively, over the call graph) acquire more locks.
///
/// Mutex names are qualified to avoid cross-class collisions: a name
/// declared in the function body stays function-scoped
/// ("Class::fn::mutex"), a member-ish name (trailing '_') gets the
/// enclosing class ("Class::mutex_"), anything else (globals, parameters)
/// keeps its bare name — the only spelling that can alias across
/// functions, which is exactly when cross-function ordering matters.
/// Mutexes acquired together by one std::scoped_lock are deliberately
/// unordered (scoped_lock's deadlock-avoidance makes the order moot).
///
/// The graph must be acyclic; each cycle is a deadlock witness and the
/// lock-order-cycle rule reports it with the acquisition chains. to_dot()
/// renders the whole graph for the CI artifact, so reviewers can read the
/// global acquisition order even when it is clean.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/index.hpp"

namespace alert::analysis_tools {

class LockGraph {
 public:
  LockGraph(const ProgramIndex& index, const CallGraph& graph);

  struct Edge {
    std::string from;  ///< qualified mutex held
    std::string to;    ///< qualified mutex acquired under it
    const FileData* file = nullptr;  ///< where the acquisition happens
    std::size_t line = 0;
    std::size_t column = 0;
    std::string label;   ///< short witness: "Fn (path:line)"
    std::string detail;  ///< full witness chain for the finding message
  };

  struct Cycle {
    std::vector<std::string> nodes;        ///< n0 -> n1 -> ... -> n0
    std::vector<const Edge*> witnesses;    ///< one edge per consecutive pair
  };

  /// All qualified mutex names seen at any lock site, sorted.
  [[nodiscard]] const std::vector<std::string>& nodes() const {
    return nodes_;
  }
  /// Deduplicated order edges, in deterministic scan order.
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }

  /// Elementary cycles found by DFS (at least one per strongly-connected
  /// component with a cycle), deterministic for a fixed scan.
  [[nodiscard]] std::vector<Cycle> cycles() const;

  /// Graphviz rendering of the full graph — the CI acquisition-order proof.
  [[nodiscard]] std::string to_dot() const;

 private:
  std::vector<std::string> nodes_;
  std::vector<Edge> edges_;
  std::map<std::string, std::vector<const Edge*>> adjacency_;
};

}  // namespace alert::analysis_tools
