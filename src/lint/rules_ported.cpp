/// \file rules_ported.cpp
/// Token-based ports of the retired Python alert-lint rules. Behaviour is
/// pinned by tools/lint_fixtures/parity.expected: on the shared fixtures
/// these rules must produce exactly the findings the regex implementation
/// produced. Where the regex was blind (comments, strings, line splits),
/// the token versions are strictly more precise.

#include <cstddef>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/rule.hpp"
#include "lint/rules_detail.hpp"
#include "lint/structure.hpp"

namespace alert::analysis_tools {

namespace {

/// raw-random: rand()/srand()/std::random_device/std::mt19937*/
/// std::default_random_engine anywhere outside util/rng.* — all randomness
/// must flow from the seeded xoshiro generator.
class RawRandomRule final : public Rule {
 public:
  explicit RawRandomRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"raw-random",
             "unseeded randomness source outside util/rng", Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    if (AnalyzerConfig::path_in(file.rel_path, cfg_->rng_impl_paths)) return;
    const CodeView v(file);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const Token& t = v.tok(i);
      if (t.kind != TokenKind::Identifier) continue;
      if ((t.text == "rand" || t.text == "srand") && v.is_punct(i + 1, "(")) {
        // Qualified names other than std:: are someone else's rand; member
        // access (x.rand(), p->rand()) likewise.
        if (i > 0 && (v.is_punct(i - 1, ".") || v.is_punct(i - 1, "->")))
          continue;
        if (i > 0 && v.is_punct(i - 1, "::") &&
            !(i > 1 && v.is_ident(i - 2, "std")))
          continue;
        report(sink, file, t, "raw C " + t.text + "()");
      } else if (t.text == "std" && v.is_punct(i + 1, "::") &&
                 i + 2 < v.size()) {
        const std::string& name = v.tok(i + 2).text;
        if (name == "random_device") {
          report(sink, file, t, "std::random_device");
        } else if (name.rfind("mt19937", 0) == 0) {
          report(sink, file, t, "std::mt19937");
        } else if (name == "default_random_engine") {
          report(sink, file, t, "std::default_random_engine");
        }
      }
    }
  }

 private:
  void report(Sink& sink, const FileData& file, const Token& t,
              const std::string& what) {
    sink.emit(info_, file, t.line, t.column,
              what + ": all randomness must come from util/rng "
                     "(seeded, reproducible)");
  }
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// wall-clock: host-clock reads inside sim/, net/, routing/ — the simulator
/// owns time; reading the host clock makes results machine-dependent.
class WallClockRule final : public Rule {
 public:
  explicit WallClockRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"wall-clock",
             "host clock read inside a simulated-time component",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    if (!AnalyzerConfig::path_in(file.rel_path, cfg_->wall_clock_dirs))
      return;
    const CodeView v(file);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const Token& t = v.tok(i);
      if (t.kind != TokenKind::Identifier) continue;
      if ((t.text == "time" || t.text == "clock") && !v.prev_is_accessor(i) &&
          v.is_punct(i + 1, "(")) {
        // time() / time(NULL) / time(nullptr) / time(0); clock().
        std::size_t j = i + 2;
        if (v.is_ident(j, "NULL") || v.is_ident(j, "nullptr") ||
            v.is(j, "0")) {
          ++j;
        }
        if (!v.is_punct(j, ")")) continue;
        if (t.text == "clock" && j != i + 2) continue;  // clock() only
        report(sink, file, t, std::string("C ") + t.text + "()");
      } else if (t.text.find("gettimeofday") != std::string::npos ||
                 t.text.find("clock_gettime") != std::string::npos) {
        report(sink, file, t, "POSIX wall clock");
      } else if (t.text == "std" && v.is_punct(i + 1, "::") &&
                 v.is_ident(i + 2, "chrono") && v.is_punct(i + 3, "::") &&
                 i + 4 < v.size()) {
        const std::string& clk = v.tok(i + 4).text;
        if (clk == "system_clock" || clk == "steady_clock" ||
            clk == "high_resolution_clock") {
          report(sink, file, t, "std::chrono clock");
        }
      }
    }
  }

 private:
  void report(Sink& sink, const FileData& file, const Token& t,
              const std::string& what) {
    sink.emit(info_, file, t.line, t.column,
              what + ": simulator components may only use simulated time "
                     "(sim::Time)");
  }
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// float-type: `float` in geometry/sim/net/routing/analysis — the 24-bit
/// mantissa drifts position/latency accumulation between compilers. The
/// Sink's dedup yields one report per line, as the regex rule produced.
class FloatTypeRule final : public Rule {
 public:
  explicit FloatTypeRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"float-type",
             "float used where accumulation requires double",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    if (!AnalyzerConfig::path_in(file.rel_path, cfg_->float_dirs)) return;
    const CodeView v(file);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const Token& t = v.tok(i);
      if (t.kind == TokenKind::Identifier && t.text == "float") {
        sink.emit(info_, file, t.line, 0,
                  "use double: float drifts in position/latency "
                  "accumulation");
      }
    }
  }

 private:
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// raw-stdout: stdout writes outside util/logging and obs/ — stdout belongs
/// to the logging layer and the obs sinks so machine-readable output stays
/// parseable. stderr and owned FILE* streams are fine.
class RawStdoutRule final : public Rule {
 public:
  explicit RawStdoutRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"raw-stdout",
             "stdout write outside util/logging and the obs sinks",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    if (AnalyzerConfig::path_in(file.rel_path, cfg_->stdout_exempt_paths))
      return;
    const CodeView v(file);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const Token& t = v.tok(i);
      if (t.kind != TokenKind::Identifier) continue;
      if (t.text == "std" && v.is_punct(i + 1, "::") &&
          v.is_ident(i + 2, "cout")) {
        report(sink, file, t, "std::cout");
        continue;
      }
      if (i > 0 && (v.is_punct(i - 1, ".") || v.is_punct(i - 1, "->")))
        continue;
      const bool std_qualified =
          i > 1 && v.is_punct(i - 1, "::") && v.is_ident(i - 2, "std");
      if (i > 0 && v.is_punct(i - 1, "::") && !std_qualified) continue;
      if ((t.text == "printf" || t.text == "puts" || t.text == "putchar") &&
          v.is_punct(i + 1, "(")) {
        report(sink, file, t, t.text + "()");
      } else if ((t.text == "fprintf" || t.text == "vfprintf") &&
                 v.is_punct(i + 1, "(") && v.is_ident(i + 2, "stdout")) {
        report(sink, file, t, "fprintf(stdout, ...)");
      }
    }
  }

 private:
  void report(Sink& sink, const FileData& file, const Token& t,
              const std::string& what) {
    sink.emit(info_, file, t.line, t.column,
              what + ": stdout is reserved for util/logging and the obs "
                     "series/trace sinks (stderr is fine)");
  }
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// iterator-invalidation: mutating a container inside a range-for over that
/// same container — classic UB inside event-loop callbacks.
class IteratorInvalidationRule final : public Rule {
 public:
  IteratorInvalidationRule() {
    info_ = {"iterator-invalidation",
             "container mutated inside a range-for over itself",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    static const std::set<std::string> kMutators{
        "erase",   "push_back",    "pop_back", "insert",
        "emplace", "emplace_back", "clear",    "resize"};
    const CodeView v(file);
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      if (!(v.is_ident(i, "for") && v.is_punct(i + 1, "("))) continue;
      const std::size_t close = v.matching(i + 1, "(", ")");
      if (close == v.size()) continue;
      // Range-for: a ':' at parenthesis depth 1 (":: " is its own token,
      // so plain for(;;) loops can never false-match).
      std::size_t colon = v.size();
      std::size_t depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        const std::string& txt = v.tok(j).text;
        if (txt == "(" || txt == "[" || txt == "{") {
          ++depth;
        } else if (txt == ")" || txt == "]" || txt == "}") {
          --depth;
        } else if (txt == ":" && depth == 1) {
          colon = j;
          break;
        }
      }
      if (colon == v.size()) continue;
      // Container expression: a member chain filling the rest of the parens
      // (the regex rule only understood dotted chains; same here).
      std::vector<std::string> chain;
      const std::size_t chain_end = read_member_chain(v, colon + 1, &chain);
      if (chain.empty() || chain_end != close) continue;
      // Loop body: braced block or single statement.
      std::size_t body_begin = close + 1;
      std::size_t body_end;  // exclusive
      if (v.is_punct(body_begin, "{")) {
        body_end = v.matching(body_begin, "{", "}");
      } else {
        body_end = body_begin;
        std::size_t d = 0;
        while (body_end < v.size()) {
          const std::string& txt = v.tok(body_end).text;
          if (txt == "(" || txt == "[" || txt == "{") {
            ++d;
          } else if (txt == ")" || txt == "]" || txt == "}") {
            --d;
          } else if (txt == ";" && d == 0) {
            break;
          }
          ++body_end;
        }
      }
      scan_body(v, file, sink, chain, body_begin, body_end, kMutators);
    }
  }

 private:
  void scan_body(const CodeView& v, const FileData& file, Sink& sink,
                 const std::vector<std::string>& chain, std::size_t begin,
                 std::size_t end, const std::set<std::string>& mutators) {
    const std::size_t n = chain.size();
    for (std::size_t j = begin; j < end; ++j) {
      if (j + n + 2 >= end) break;
      if (j > 0 && (v.is_punct(j - 1, ".") || v.is_punct(j - 1, "->")))
        continue;
      bool match = true;
      for (std::size_t k = 0; k < n; ++k) {
        if (v.tok(j + k).text != chain[k]) {
          match = false;
          break;
        }
      }
      if (!match) continue;
      // chain . mutator (
      if (!(v.is_punct(j + n, ".") || v.is_punct(j + n, "->"))) continue;
      const Token& m = v.tok(j + n + 1);
      if (mutators.count(m.text) == 0 || !v.is_punct(j + n + 2, "("))
        continue;
      std::string name;
      for (const std::string& part : chain) name += part;
      sink.emit(info_, file, v.tok(j).line, v.tok(j).column,
                "'" + name + "." + m.text + "()' inside a range-for over '" +
                    name + "' invalidates the loop iterator");
    }
  }
  RuleInfo info_;
};

/// drop-reason-exhaustive: every switch over net::DropReason must name all
/// enumerators and carry no default; the declaration itself must match the
/// configured canonical list so the two can never drift silently.
class DropReasonRule final : public Rule {
 public:
  explicit DropReasonRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"drop-reason-exhaustive",
             "non-exhaustive or defaulted switch over net::DropReason",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void check_file(const FileData& file, Sink& sink) override {
    const CodeView v(file);
    const std::vector<std::string>& canon = cfg_->drop_reason_enumerators;
    for (std::size_t i = 0; i < v.size(); ++i) {
      std::string name;
      std::vector<std::string> declared;
      std::size_t line = 0;
      if (!v.is_ident(i, "enum") ||
          !parse_enum_definition(v, i, &name, &declared, &line) ||
          name != "DropReason") {
        continue;
      }
      if (declared != canon) {
        sink.emit(info_, file, line, v.tok(i).column,
                  "enum class DropReason declares [" + join(declared) +
                      "] but the analyzer's canonical list is [" +
                      join(canon) +
                      "] — update the drop-reason config (and every "
                      "switch) together");
      }
    }
    for (const SwitchInfo& sw : collect_switches(v)) {
      std::set<std::string> cases;
      for (const auto& [type, enumerator] : sw.cases) {
        if (type == "DropReason") cases.insert(enumerator);
      }
      if (cases.empty()) continue;
      if (sw.has_default) {
        sink.emit(info_, file, sw.line, sw.column,
                  "'default:' in a switch over net::DropReason swallows "
                  "newly added reasons — enumerate every case instead");
      }
      std::vector<std::string> missing;
      for (const std::string& r : canon) {
        if (cases.count(r) == 0) missing.push_back(r);
      }
      if (!missing.empty()) {
        sink.emit(info_, file, sw.line, sw.column,
                  "switch over net::DropReason is missing case(s): " +
                      join(missing));
      }
    }
  }

 private:
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

}  // namespace

namespace detail {

std::unique_ptr<Rule> make_raw_random(const AnalyzerConfig& c) {
  return std::make_unique<RawRandomRule>(c);
}
std::unique_ptr<Rule> make_wall_clock(const AnalyzerConfig& c) {
  return std::make_unique<WallClockRule>(c);
}
std::unique_ptr<Rule> make_float_type(const AnalyzerConfig& c) {
  return std::make_unique<FloatTypeRule>(c);
}
std::unique_ptr<Rule> make_raw_stdout(const AnalyzerConfig& c) {
  return std::make_unique<RawStdoutRule>(c);
}
std::unique_ptr<Rule> make_iterator_invalidation() {
  return std::make_unique<IteratorInvalidationRule>();
}
std::unique_ptr<Rule> make_drop_reason(const AnalyzerConfig& c) {
  return std::make_unique<DropReasonRule>(c);
}

}  // namespace detail

}  // namespace alert::analysis_tools
