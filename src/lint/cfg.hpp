#pragma once

/// \file cfg.hpp
/// Intraprocedural control-flow graphs over the code-token stream. One CFG
/// per function body: basic blocks hold ordered code-token ranges, edges
/// follow if/else, while, for (classic and range), do-while, switch
/// (including fallthrough between case groups), break/continue/return and
/// goto (backward edges included). Ternaries stay inside one block — the
/// join is implicit, which is exactly the conservative treatment a
/// may-analysis wants. Lambda bodies are opaque: their tokens land in the
/// enclosing block but their control flow (a `return` inside a lambda does
/// not leave the enclosing function) never edges into the function's CFG.
/// Everything here is token-level, so unmodeled constructs degrade to
/// straight-line over-approximation, never to missing paths.

#include <cstddef>
#include <utility>
#include <vector>

#include "lint/file_data.hpp"

namespace alert::analysis_tools {

struct CfgBlock {
  /// Ordered, disjoint [begin, end) code-token ranges belonging to this
  /// block (a for-loop head and its latch are separate blocks, so a block's
  /// tokens need not be contiguous with its neighbours').
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<std::size_t> succ;
  std::vector<std::size_t> pred;
};

enum class LoopKind { While, DoWhile, For, RangeFor };

struct LoopInfo {
  LoopKind kind = LoopKind::While;
  std::size_t head = 0;        ///< block id of the condition/head block
  std::size_t begin = 0;       ///< code index of the loop keyword
  std::size_t end = 0;         ///< one past the whole loop statement
  std::size_t body_begin = 0;  ///< code index of the body statement
  std::size_t body_end = 0;    ///< one past the body statement
  std::size_t line = 0;        ///< line of the loop keyword
  /// True for a classic `for (init; cond; step)` — iteration order is an
  /// explicit index program, so reductions inside stay reassociation-safe
  /// to reorder proofs (fp-accumulation-order exempts these).
  bool index_ordered = false;
};

struct Cfg {
  std::vector<CfgBlock> blocks;
  std::size_t entry = 0;
  std::size_t exit = 1;
  /// All loops in the body, in source order of their keywords.
  std::vector<LoopInfo> loops;

  /// Innermost loop whose statement extent contains code index `tok`;
  /// nullptr when `tok` is outside every loop.
  [[nodiscard]] const LoopInfo* innermost_loop_at(std::size_t tok) const;
};

/// Build the CFG of a function body: `body_begin` is the code index of the
/// body '{' and `body_end` its matching '}' (FunctionInfo's convention).
[[nodiscard]] Cfg build_cfg(const CodeView& v, std::size_t body_begin,
                            std::size_t body_end);

}  // namespace alert::analysis_tools
