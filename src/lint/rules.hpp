#pragma once

/// \file rules.hpp
/// The rule catalog. `make_default_rules` instantiates every built-in rule
/// against a config; docs/VERIFICATION.md documents each rule's rationale.
///
/// Ported from the retired Python alert-lint (token-based now):
///   raw-random, wall-clock, float-type, raw-stdout, iterator-invalidation,
///   drop-reason-exhaustive (header-self-sufficiency lives in the analyzer —
///   it shells out to the compiler rather than matching tokens).
/// New rules regex could not express:
///   module-layering, unordered-iteration-ordering, pointer-ordering,
///   exhaustive-enum, mutable-global.

#include <memory>
#include <vector>

#include "lint/rule.hpp"

namespace alert::analysis_tools {

[[nodiscard]] std::vector<std::unique_ptr<Rule>> make_default_rules(
    const AnalyzerConfig& config);

}  // namespace alert::analysis_tools
