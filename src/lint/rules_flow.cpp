/// \file rules_flow.cpp
/// Flow-sensitive rule families built on the CFG/dataflow layer
/// (lint/cfg.hpp, lint/dataflow.hpp) and the lock graph (lint/lockgraph.hpp)
/// — the analyzer tier that reasons about *order* of operations inside a
/// function, which the token- and call-graph-level rules cannot:
///
///   lock-order-cycle      the global lock-acquisition graph must be
///                         acyclic; each cycle is reported with its witness
///                         acquisition chains (the PDES deadlock gate)
///   use-after-move        forward dataflow of moved-from locals; reset on
///                         reassignment, .clear()/.reset()/.assign()/.swap()
///                         and redeclaration (range-for heads rebind)
///   fp-accumulation-order float/double +=/-= reductions inside loops whose
///                         iteration order is not an explicit index program
///                         (range-for/while/do) in digest-sensitive dirs —
///                         PDES reassociation would break digest identity
///   sim-state-confinement shared Network/node/Simulator state must not be
///                         touched from ThreadPool worker tasks except
///                         through the Simulator dispatch methods
///
/// All four run in finish_program() against the shared index/graph.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/cfg.hpp"
#include "lint/dataflow.hpp"
#include "lint/index.hpp"
#include "lint/lockgraph.hpp"
#include "lint/rule.hpp"
#include "lint/rules_detail.hpp"

namespace alert::analysis_tools {

namespace {

bool ends_with(const std::string& s, char c) {
  return !s.empty() && s.back() == c;
}

/// Variable names declared in code-token range [begin, end) with one of
/// `types` as the declared type: `Type [&*const]* name`. Mirrors the
/// indexer's RNG-engine scan; template wrappers (vector<double>,
/// shared_ptr<Network>) are deliberately not followed —
/// under-approximation keeps the rules quiet on code they cannot type.
std::set<std::string> collect_typed_vars(const CodeView& v,
                                         const std::set<std::string>& types,
                                         std::size_t begin, std::size_t end) {
  std::set<std::string> out;
  end = std::min(end, v.size());
  for (std::size_t i = begin; i < end; ++i) {
    const Token& t = v.tok(i);
    if (t.kind != TokenKind::Identifier || types.count(t.text) == 0) continue;
    std::size_t k = i + 1;
    while (v.is_punct(k, "&") || v.is_punct(k, "*") ||
           v.is_ident(k, "const")) {
      ++k;
    }
    if (k < v.size() && v.tok(k).kind == TokenKind::Identifier &&
        v.tok(k).text != "const" && v.tok(k).text != "operator") {
      out.insert(v.tok(k).text);
    }
  }
  return out;
}

/// Names with one of `types` that are visible inside `fn`: declared in the
/// function's parameter list or body, or a member-ish name (trailing '_')
/// declared anywhere in the file with that type. File-wide collection for
/// non-members would conflate same-named locals of different functions
/// (e.g. a `double* out` parameter in one function poisoning a
/// `std::string out` local in another), so the scope is deliberate.
std::set<std::string> typed_vars_in_scope(const CodeView& v,
                                          const FunctionInfo& fn,
                                          const std::set<std::string>& types) {
  // Walk back from the body '{' over trailing specifiers (const, noexcept,
  // override, -> T) to the ')' closing the parameter list, then to its
  // matching '(' — the header range covering the parameters.
  std::size_t header = fn.body_begin;
  std::size_t j = fn.body_begin;
  for (std::size_t guard = 0; j > 0 && guard < 16; ++guard) {
    --j;
    const std::string& t = v.tok(j).text;
    if (t == ")") break;
    if (t == "{" || t == "}" || t == ";") {
      j = 0;
      break;
    }
  }
  if (j > 0 && v.is_punct(j, ")")) {
    std::size_t depth = 1;
    while (j > 0 && depth > 0) {
      --j;
      const std::string& t = v.tok(j).text;
      if (t == ")") ++depth;
      if (t == "(") --depth;
    }
    if (depth == 0) header = j;
  }
  std::set<std::string> out =
      collect_typed_vars(v, types, header, fn.body_end);
  for (const std::string& name :
       collect_typed_vars(v, types, 0, v.size())) {
    if (ends_with(name, '_')) out.insert(name);
  }
  return out;
}

/// True when code index `j` lies strictly inside any lambda body of `fn` —
/// flow-sensitive rules treat lambda bodies as opaque (they run at another
/// time, possibly never, possibly on another thread).
bool in_lambda_body(const FunctionInfo& fn, std::size_t j) {
  for (const LambdaInfo& l : fn.lambdas) {
    if (l.body_begin < j && j < l.body_end) return true;
  }
  return false;
}

/// Same type-position test as declared_names(): the identifier at `i` is
/// being declared (type-ish token before, declarator punctuation after).
bool is_declaration(const CodeView& v, std::size_t i) {
  if (i == 0) return false;
  const Token& prev = v.tok(i - 1);
  static const std::set<std::string> kTypeKeywords{
      "auto", "bool",  "char",     "double",   "float", "int",
      "long", "short", "signed",   "unsigned", "void",  "wchar_t",
      "const"};
  static const std::set<std::string> kNonTypeKeywords{
      "return", "delete", "new",  "sizeof", "throw", "case",
      "goto",   "else",   "do",   "break",  "continue"};
  const bool type_prev =
      (prev.kind == TokenKind::Identifier &&
       (kTypeKeywords.count(prev.text) != 0 ||
        kNonTypeKeywords.count(prev.text) == 0)) ||
      prev.text == ">" || prev.text == "&" || prev.text == "*";
  if (!type_prev) return false;
  // `obj.field x` is not a declaration, but a scope-qualified type
  // (`obs::ScopeStats s;`) is — only member access disqualifies.
  if (prev.kind == TokenKind::Identifier && i >= 2 &&
      (v.is_punct(i - 2, ".") || v.is_punct(i - 2, "->"))) {
    return false;
  }
  if (i + 1 >= v.size()) return false;
  const std::string& next = v.tok(i + 1).text;
  return next == "=" || next == ";" || next == "," || next == ")" ||
         next == "{" || next == "(" || next == ":";
}

/// lock-order-cycle: every cycle in the program lock graph is a deadlock
/// witness — two threads entering it from different nodes block forever.
/// The graph (and its DOT rendering, shipped as a CI artifact via
/// AnalyzeResult::lock_graph_dot) doubles as the acquisition-order proof
/// when clean.
class LockOrderCycleRule final : public Rule {
 public:
  LockOrderCycleRule() {
    info_ = {"lock-order-cycle",
             "lock acquisition order contains a deadlock cycle",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    const LockGraph lock_graph(index, graph);
    for (const LockGraph::Cycle& cycle : lock_graph.cycles()) {
      std::string ring;
      for (const std::string& n : cycle.nodes) ring += n + " -> ";
      ring += cycle.nodes.front();
      std::string chains;
      for (const LockGraph::Edge* w : cycle.witnesses) {
        if (!chains.empty()) chains += "; ";
        chains += w->detail;
      }
      const LockGraph::Edge* at = cycle.witnesses.front();
      sink.emit(info_, *at->file, at->line, at->column,
                "lock-order cycle " + ring + ": " + chains +
                    " — acquire these mutexes in one global order, or take "
                    "them together in a single std::scoped_lock");
    }
  }

 private:
  RuleInfo info_;
};

/// use-after-move: forward may-dataflow of moved-from locals over the CFG.
/// gen at `std::move(x)` (single-identifier argument only), kill on
/// reassignment, .clear()/.reset()/.assign()/.swap() and redeclaration;
/// conservative bail-outs: variables captured by reference into lambdas or
/// whose address is taken leave the analysis, and lambda-body uses are
/// skipped (they run at another time).
class UseAfterMoveRule final : public Rule {
 public:
  UseAfterMoveRule() {
    info_ = {"use-after-move",
             "moved-from variable is used before being reset",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    (void)graph;
    for (const FunctionInfo& fn : index.functions()) {
      check_function(fn, sink);
    }
  }

 private:
  enum class Action { Use, Move, Kill };
  struct Event {
    Action action = Action::Use;
    unsigned var = 0;
    std::size_t line = 0;
    std::size_t column = 0;
  };

  /// `j` indexes `move` — return the single-identifier argument's code
  /// index, or size() when the call shape does not match `std::move(x)`.
  static std::size_t move_arg(const CodeView& v, std::size_t j) {
    if (!v.is_ident(j, "move") || !v.is_punct(j + 1, "(")) return v.size();
    const bool std_qualified =
        j >= 2 && v.is_punct(j - 1, "::") && v.is_ident(j - 2, "std");
    if (!std_qualified && v.prev_is_accessor(j)) return v.size();
    if (j + 3 < v.size() && v.tok(j + 2).kind == TokenKind::Identifier &&
        v.is_punct(j + 3, ")")) {
      return j + 2;
    }
    return v.size();
  }

  void check_function(const FunctionInfo& fn, Sink& sink) {
    const CodeView v(*fn.file);
    // Pass 1: which locals are ever moved from? (Fast path: most
    // functions move nothing and never build a CFG.) Fact ids are only
    // assigned after the bail-out passes below settle the final set.
    std::set<std::string> moved_names;
    for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
      const std::size_t arg = move_arg(v, j);
      if (arg < v.size()) moved_names.insert(v.tok(arg).text);
    }
    if (moved_names.empty()) return;

    // Conservative bail-outs: reference-captured (a lambda may reset or
    // reuse the variable at any time) and address-taken variables leave
    // the analysis entirely.
    for (const LambdaInfo& lam : fn.lambdas) {
      for (auto it = moved_names.begin(); it != moved_names.end();) {
        bool drop = lam.captures_by_ref(*it);
        if (!drop && lam.has_default_ref()) {
          for (std::size_t j = lam.body_begin + 1;
               !drop && j < lam.body_end; ++j) {
            drop = v.is_ident(j, *it);
          }
        }
        it = drop ? moved_names.erase(it) : ++it;
      }
    }
    for (std::size_t j = fn.body_begin + 2; j < fn.body_end; ++j) {
      if (!v.is_punct(j - 1, "&")) continue;
      const Token& before = v.tok(j - 2);
      const bool binary = before.kind == TokenKind::Identifier ||
                          before.kind == TokenKind::Number ||
                          before.text == ")" || before.text == "]";
      if (binary) continue;  // `a & b`, not address-of
      moved_names.erase(v.tok(j).text);
    }
    if (moved_names.empty()) return;
    std::map<std::string, unsigned> vars;
    for (const std::string& name : moved_names) {
      vars.emplace(name, static_cast<unsigned>(vars.size()));
    }

    const Cfg cfg = build_cfg(v, fn.body_begin, fn.body_end);
    std::vector<std::vector<Event>> events(cfg.blocks.size());
    std::vector<BlockFacts> facts(cfg.blocks.size());
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      scan_block(v, fn, cfg.blocks[b], vars, &events[b]);
      // Transfer summary: the block's last action per variable decides.
      std::map<unsigned, Action> last;
      for (const Event& e : events[b]) {
        if (e.action != Action::Use) last[e.var] = e.action;
      }
      for (const auto& [var, action] : last) {
        if (action == Action::Move) {
          facts[b].gen.insert(var);
        } else {
          facts[b].kill.insert(var);
        }
      }
    }
    const std::vector<std::set<unsigned>> in = solve_forward(cfg, facts);

    // Report: replay each block from its IN state.
    std::vector<std::string> names(vars.size());
    for (const auto& [name, id] : vars) names[id] = name;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
      std::set<unsigned> moved = in[b];
      for (const Event& e : events[b]) {
        switch (e.action) {
          case Action::Use:
            if (moved.count(e.var) != 0) {
              emit(sink, fn, names[e.var], e.line, e.column, false);
              moved.erase(e.var);  // one report per variable per path
            }
            break;
          case Action::Move:
            if (moved.count(e.var) != 0) {
              emit(sink, fn, names[e.var], e.line, e.column, true);
            }
            moved.insert(e.var);
            break;
          case Action::Kill:
            moved.erase(e.var);
            break;
        }
      }
    }
  }

  static void scan_block(const CodeView& v, const FunctionInfo& fn,
                         const CfgBlock& block,
                         const std::map<std::string, unsigned>& vars,
                         std::vector<Event>* out) {
    static const std::set<std::string> kResetMethods{"clear", "reset",
                                                     "assign", "swap"};
    for (const auto& [begin, end] : block.ranges) {
      for (std::size_t j = begin; j < end; ++j) {
        // Lambda bodies are opaque; capture lists still run here (an
        // init-capture `[y = std::move(x)]` moves x at creation time).
        if (in_lambda_body(fn, j)) continue;
        const std::size_t arg = move_arg(v, j);
        if (arg < v.size()) {
          const auto it = vars.find(v.tok(arg).text);
          if (it != vars.end()) {
            out->push_back({Action::Move, it->second, v.tok(arg).line,
                            v.tok(arg).column});
          }
          j = arg + 1;  // past the ')'
          continue;
        }
        const Token& t = v.tok(j);
        if (t.kind != TokenKind::Identifier) continue;
        const auto it = vars.find(t.text);
        if (it == vars.end() || v.prev_is_accessor(j)) continue;
        Action action = Action::Use;
        if (is_declaration(v, j)) {
          action = Action::Kill;
        } else if (v.is_punct(j + 1, "=")) {
          action = Action::Kill;
        } else if (j > 0 && v.is_punct(j - 1, ">>")) {
          // Stream extraction (`in >> token`) refills the variable — the
          // canonical move-in-a-read-loop idiom.
          action = Action::Kill;
        } else if ((v.is_punct(j + 1, ".") || v.is_punct(j + 1, "->")) &&
                   j + 2 < v.size() &&
                   kResetMethods.count(v.tok(j + 2).text) != 0 &&
                   v.is_punct(j + 3, "(")) {
          action = Action::Kill;
        }
        out->push_back({action, it->second, t.line, t.column});
      }
    }
  }

  void emit(Sink& sink, const FunctionInfo& fn, const std::string& name,
            std::size_t line, std::size_t column, bool double_move) {
    sink.emit(info_, *fn.file, line, column,
              std::string(double_move ? "'" : "'") + name +
                  (double_move
                       ? "' is moved from again while already moved-from in '"
                       : "' may be used after std::move in '") +
                  fn.qualified +
                  "' — reassign it or call .clear()/.reset() before reuse");
  }

  RuleInfo info_;
};

/// fp-accumulation-order: a float/double reduction inside a loop whose
/// iteration order is not an explicit index program (range-for, while,
/// do-while) is exactly the code PDES partitioning would reassociate —
/// and IEEE-754 addition is not associative, so the determinism digest
/// would drift. Classic `for (init; cond; step)` loops are exempt (their
/// order is pinned by the index), as is anything the file types as an
/// obs-style order-insensitive accumulator.
class FpAccumulationOrderRule final : public Rule {
 public:
  explicit FpAccumulationOrderRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"fp-accumulation-order",
             "order-sensitive float accumulation in a non-indexed loop",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    (void)graph;
    static const std::set<std::string> kFloatTypes{"double", "float"};
    static const std::set<std::string> kAccumTypes{"Accumulator"};
    for (const FunctionInfo& fn : index.functions()) {
      if (!AnalyzerConfig::path_in(fn.file->rel_path, cfg_->fp_digest_dirs))
        continue;
      const CodeView v(*fn.file);
      // Cheap pre-filter: no compound assignment, no candidate sites.
      bool has_compound = false;
      for (std::size_t j = fn.body_begin + 1;
           !has_compound && j < fn.body_end; ++j) {
        has_compound = v.is_punct(j, "+=") || v.is_punct(j, "-=");
      }
      if (!has_compound) continue;
      const std::set<std::string> float_vars =
          typed_vars_in_scope(v, fn, kFloatTypes);
      if (float_vars.empty()) continue;
      const std::set<std::string> accum_vars =
          typed_vars_in_scope(v, fn, kAccumTypes);
      check_function(v, fn, float_vars, accum_vars, sink);
    }
  }

 private:
  void check_function(const CodeView& v, const FunctionInfo& fn,
                      const std::set<std::string>& float_vars,
                      const std::set<std::string>& accum_vars, Sink& sink) {
    // Candidate sites first; the CFG is only built when one exists.
    struct Site {
      std::size_t head = 0;      ///< code index of the chain head
      std::string target;        ///< printable chain
      std::string op;
    };
    std::vector<Site> sites;
    for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
      const Token& t = v.tok(j);
      if (t.kind != TokenKind::Identifier || v.prev_is_accessor(j)) continue;
      if (in_lambda_body(fn, j)) continue;  // runs at another time/thread
      // Follow the lvalue chain (subscripts elided, members kept).
      std::string target = t.text;
      std::string last_segment = t.text;
      std::size_t k = j + 1;
      while (k < v.size()) {
        if (v.is_punct(k, "[")) {
          const std::size_t close = v.matching(k, "[", "]");
          if (close >= v.size()) break;
          target += "[]";
          k = close + 1;
          continue;
        }
        if ((v.is_punct(k, ".") || v.is_punct(k, "->")) && k + 1 < v.size() &&
            v.tok(k + 1).kind == TokenKind::Identifier &&
            !v.is_punct(k + 2, "(")) {
          last_segment = v.tok(k + 1).text;
          target += v.tok(k).text + last_segment;
          k += 2;
          continue;
        }
        break;
      }
      if (k >= v.size() ||
          (!v.is_punct(k, "+=") && !v.is_punct(k, "-="))) {
        continue;
      }
      if (accum_vars.count(t.text) != 0) continue;  // order-free by type
      if (float_vars.count(t.text) == 0 &&
          float_vars.count(last_segment) == 0) {
        continue;  // not provably floating-point — stay quiet
      }
      sites.push_back({j, target, v.tok(k).text});
    }
    if (sites.empty()) return;

    const Cfg cfg = build_cfg(v, fn.body_begin, fn.body_end);
    for (const Site& site : sites) {
      const LoopInfo* loop = cfg.innermost_loop_at(site.head);
      if (loop == nullptr || loop->index_ordered) continue;
      const char* kind = loop->kind == LoopKind::RangeFor ? "range-for"
                         : loop->kind == LoopKind::DoWhile ? "do-while"
                                                           : "while";
      const Token& t = v.tok(site.head);
      sink.emit(info_, *fn.file, t.line, t.column,
                "floating-point accumulation '" + site.target + " " +
                    site.op + " ...' in a " + kind + " loop in '" +
                    fn.qualified +
                    "' — iteration order is not an explicit index program, "
                    "so PDES reassociation would change the determinism "
                    "digest; use an index-ordered for loop, or prove the "
                    "update order-free and waive");
    }
  }

  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// sim-state-confinement: the PDES partition-safety precondition. Shared
/// simulator-owned state (Network, nodes, the event queue) reached from a
/// ThreadPool worker task bypasses the event loop's single-writer
/// discipline; the only sanctioned channel is the Simulator dispatch
/// context (schedule_in/schedule_at/schedule_periodic), which marshals the
/// effect back onto simulated time. Copies (by-value captures), locals and
/// parameters are confined by construction and stay quiet.
class SimStateConfinementRule final : public Rule {
 public:
  explicit SimStateConfinementRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"sim-state-confinement",
             "shared simulator state touched from a worker task",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    (void)graph;
    const std::set<std::string> state_types(cfg_->sim_state_types.begin(),
                                            cfg_->sim_state_types.end());
    const std::set<std::string> dispatch(cfg_->sim_dispatch_methods.begin(),
                                         cfg_->sim_dispatch_methods.end());
    for (const FunctionInfo& fn : index.functions()) {
      bool has_worker = false;
      for (const LambdaInfo& lam : fn.lambdas) has_worker |= lam.worker;
      if (!has_worker) continue;
      const CodeView v(*fn.file);
      const std::set<std::string> sim_vars =
          typed_vars_in_scope(v, fn, state_types);
      if (sim_vars.empty()) continue;

      for (const LambdaInfo& lam : fn.lambdas) {
        if (!lam.worker) continue;
        const std::set<std::string> locals =
            declared_names(*fn.file, lam.body_begin, lam.body_end);
        std::set<std::string> flagged;
        for (std::size_t j = lam.body_begin + 1; j < lam.body_end; ++j) {
          const Token& t = v.tok(j);
          if (t.kind != TokenKind::Identifier ||
              sim_vars.count(t.text) == 0 || v.prev_is_accessor(j)) {
            continue;
          }
          if (!shared_in(lam, locals, t.text)) continue;
          // The sanctioned channel: sim.schedule_*(...) dispatch calls.
          if ((v.is_punct(j + 1, ".") || v.is_punct(j + 1, "->")) &&
              j + 2 < v.size() && dispatch.count(v.tok(j + 2).text) != 0 &&
              v.is_punct(j + 3, "(")) {
            continue;
          }
          if (!flagged.insert(t.text).second) continue;
          sink.emit(info_, *fn.file, t.line, t.column,
                    "simulator state '" + t.text +
                        "' is touched from a ThreadPool worker task in '" +
                        fn.qualified +
                        "' — worker code must not reach shared "
                        "Network/node/queue state; marshal the effect "
                        "through the Simulator dispatch context "
                        "(schedule_in/schedule_at) or operate on a "
                        "confined copy");
        }
      }
    }
  }

 private:
  /// Does `name` inside this worker lambda denote *shared* state? Locals,
  /// parameters and by-value captures are copies or confined; explicit
  /// by-ref captures, default-& captures of enclosing-scope names and
  /// members (trailing '_', reached via a this/default capture) are shared.
  static bool shared_in(const LambdaInfo& lam,
                        const std::set<std::string>& locals,
                        const std::string& name) {
    if (lam.params.count(name) != 0 || locals.count(name) != 0) return false;
    for (const Capture& c : lam.captures) {
      if (!c.is_default && c.name == name) return c.by_ref;
    }
    if (ends_with(name, '_')) return true;  // member via this capture
    return lam.has_default_ref();
  }

  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

}  // namespace

namespace detail {

std::unique_ptr<Rule> make_lock_order_cycle() {
  return std::make_unique<LockOrderCycleRule>();
}
std::unique_ptr<Rule> make_use_after_move() {
  return std::make_unique<UseAfterMoveRule>();
}
std::unique_ptr<Rule> make_fp_accumulation_order(const AnalyzerConfig& c) {
  return std::make_unique<FpAccumulationOrderRule>(c);
}
std::unique_ptr<Rule> make_sim_state_confinement(const AnalyzerConfig& c) {
  return std::make_unique<SimStateConfinementRule>(c);
}

}  // namespace detail

}  // namespace alert::analysis_tools
