/// \file lockgraph.cpp

#include "lint/lockgraph.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace alert::analysis_tools {

namespace {

/// How a function comes to hold a lock: a direct guard in its body, or a
/// call into a function that (transitively) acquires it.
struct Acq {
  bool direct = false;
  std::size_t line = 0;       ///< direct: the guard's line
  std::size_t via_fn = 0;     ///< indirect: callee index on the path
  std::size_t via_line = 0;   ///< indirect: call-site line
};

std::string class_of(const std::string& qualified) {
  const std::size_t sep = qualified.rfind("::");
  return sep == std::string::npos ? std::string() : qualified.substr(0, sep);
}

/// Qualified node name for a mutex operand in `fn` (see lockgraph.hpp).
std::string qualify(const FunctionInfo& fn,
                    const std::set<std::string>& body_locals,
                    const std::string& mutex) {
  const std::string base = mutex.substr(0, mutex.find('.'));
  if (body_locals.count(base) != 0) return fn.qualified + "::" + mutex;
  if (!base.empty() && base.back() == '_') {
    const std::string cls = class_of(fn.qualified);
    if (!cls.empty()) return cls + "::" + mutex;
  }
  return mutex;
}

std::string site_ref(const FunctionInfo& fn, std::size_t line) {
  return fn.file->rel_path + ":" + std::to_string(line);
}

}  // namespace

LockGraph::LockGraph(const ProgramIndex& index, const CallGraph& graph) {
  const std::vector<FunctionInfo>& fns = index.functions();

  // Per-function qualified lock names and body-local declarations.
  std::vector<std::set<std::string>> locals(fns.size());
  std::set<std::string> node_set;
  std::vector<std::map<std::string, Acq>> acquires(fns.size());
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    const FunctionInfo& fn = fns[fi];
    if (fn.locks.empty()) continue;
    locals[fi] = declared_names(*fn.file, fn.body_begin, fn.body_end);
    for (const LockSite& lock : fn.locks) {
      for (const std::string& m : lock.mutexes) {
        const std::string q = qualify(fn, locals[fi], m);
        node_set.insert(q);
        auto [it, inserted] = acquires[fi].emplace(q, Acq{});
        if (inserted) {
          it->second.direct = true;
          it->second.line = lock.line;
        }
      }
    }
  }
  nodes_.assign(node_set.begin(), node_set.end());

  // May-acquire fixpoint over the call graph: a caller may acquire every
  // lock any resolved callee may acquire. Deterministic worklist (index
  // order passes until stable); the first witness found is kept.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t u = 0; u < fns.size(); ++u) {
      for (const CallGraph::Edge& e : graph.edges()[u]) {
        for (const auto& [lock, acq] : acquires[e.target]) {
          (void)acq;
          if (acquires[u].count(lock) != 0) continue;
          Acq via;
          via.via_fn = e.target;
          via.via_line = e.via->line;
          acquires[u].emplace(lock, via);
          changed = true;
        }
      }
    }
  }

  // Edges. Intraprocedural first (nested guards), then interprocedural
  // (calls under held locks into lock-acquiring callees); dedup by
  // (from, to) keeping the first — and therefore shallowest — witness.
  std::set<std::pair<std::string, std::string>> seen;
  auto add_edge = [&](Edge&& e) {
    if (!seen.emplace(e.from, e.to).second) return;
    edges_.push_back(std::move(e));
  };
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    const FunctionInfo& fn = fns[fi];
    for (const LockSite& lock : fn.locks) {
      if (lock.held.empty()) continue;
      for (const std::string& h : lock.held) {
        const std::string from = qualify(fn, locals[fi], h);
        for (const std::string& m : lock.mutexes) {
          const std::string to = qualify(fn, locals[fi], m);
          if (from == to) continue;  // re-spelled same guard operand
          Edge e;
          e.from = from;
          e.to = to;
          e.file = fn.file;
          e.line = lock.line;
          e.column = lock.column;
          e.label = fn.qualified + " (" + site_ref(fn, lock.line) + ")";
          e.detail = "'" + fn.qualified + "' acquires '" + to +
                     "' while holding '" + from + "' (" +
                     site_ref(fn, lock.line) + ")";
          add_edge(std::move(e));
        }
      }
    }
  }
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    const FunctionInfo& fn = fns[fi];
    for (const CallSite& call : fn.calls) {
      if (call.held.empty()) continue;
      for (const std::size_t target : graph.resolve(fi, call)) {
        for (const auto& [lock, first_acq] : acquires[target]) {
          (void)first_acq;
          for (const std::string& h : call.held) {
            const std::string from = qualify(fn, locals[fi], h);
            if (from == lock) continue;  // same-lock re-entry, not an order
            // Witness chain: caller -> ... -> the function with the guard.
            std::string chain = "'" + fn.qualified + "' holds '" + from +
                                "' and calls '" +
                                fns[target].qualified + "' (" +
                                site_ref(fn, call.line) + ")";
            std::size_t cur = target;
            while (true) {
              const Acq& a = acquires[cur].at(lock);
              if (a.direct) {
                chain += "; '" + fns[cur].qualified + "' acquires '" + lock +
                         "' (" + site_ref(fns[cur], a.line) + ")";
                break;
              }
              chain += " -> '" + fns[a.via_fn].qualified + "' (" +
                       site_ref(fns[cur], a.via_line) + ")";
              cur = a.via_fn;
            }
            Edge e;
            e.from = from;
            e.to = lock;
            e.file = fn.file;
            e.line = call.line;
            e.column = call.column;
            e.label = fn.qualified + " -> " + fns[target].qualified + " (" +
                      site_ref(fn, call.line) + ")";
            e.detail = std::move(chain);
            add_edge(std::move(e));
          }
        }
      }
    }
  }

  for (const Edge& e : edges_) adjacency_[e.from].push_back(&e);
}

std::vector<LockGraph::Cycle> LockGraph::cycles() const {
  std::vector<Cycle> out;
  std::set<std::vector<std::string>> canonical_seen;
  enum : char { White, Gray, Black };
  std::map<std::string, char> color;
  for (const std::string& n : nodes_) color[n] = White;
  std::vector<std::pair<std::string, const Edge*>> stack;  // node, in-edge

  // Iterative DFS from every node in sorted order; a back edge to a gray
  // node closes a cycle. Deterministic: adjacency lists follow edge order.
  for (const std::string& root : nodes_) {
    if (color[root] != White) continue;
    struct Frame {
      std::string node;
      std::size_t next = 0;
    };
    std::vector<Frame> frames{{root, 0}};
    color[root] = Gray;
    stack.clear();
    stack.emplace_back(root, nullptr);
    while (!frames.empty()) {
      Frame& f = frames.back();
      const auto adj_it = adjacency_.find(f.node);
      const std::vector<const Edge*>* adj =
          adj_it == adjacency_.end() ? nullptr : &adj_it->second;
      if (adj == nullptr || f.next >= adj->size()) {
        color[f.node] = Black;
        frames.pop_back();
        stack.pop_back();
        continue;
      }
      const Edge* e = (*adj)[f.next++];
      const char c =
          color.count(e->to) != 0 ? color[e->to] : static_cast<char>(Black);
      if (c == Gray) {
        // Unwind the stack back to e->to to extract the cycle.
        Cycle cycle;
        std::size_t start = stack.size();
        while (start > 0 && stack[start - 1].first != e->to) --start;
        if (start == 0) continue;
        --start;  // index of e->to on the stack
        for (std::size_t s = start; s < stack.size(); ++s) {
          cycle.nodes.push_back(stack[s].first);
        }
        for (std::size_t s = start + 1; s < stack.size(); ++s) {
          cycle.witnesses.push_back(stack[s].second);
        }
        cycle.witnesses.push_back(e);
        // Canonicalize: rotate so the smallest node leads, dedupe.
        std::size_t min_at = 0;
        for (std::size_t k = 1; k < cycle.nodes.size(); ++k) {
          if (cycle.nodes[k] < cycle.nodes[min_at]) min_at = k;
        }
        const auto shift = static_cast<std::ptrdiff_t>(min_at);
        std::rotate(cycle.nodes.begin(), cycle.nodes.begin() + shift,
                    cycle.nodes.end());
        std::rotate(cycle.witnesses.begin(),
                    cycle.witnesses.begin() + shift,
                    cycle.witnesses.end());
        if (canonical_seen.insert(cycle.nodes).second) {
          out.push_back(std::move(cycle));
        }
      } else if (c == White) {
        color[e->to] = Gray;
        frames.push_back({e->to, 0});
        stack.emplace_back(e->to, e);
      }
    }
  }
  return out;
}

std::string LockGraph::to_dot() const {
  auto escape = [](const std::string& s) {
    std::string out;
    for (const char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::string dot = "digraph lock_order {\n  rankdir=LR;\n";
  for (const std::string& n : nodes_) {
    dot += "  \"" + escape(n) + "\";\n";
  }
  for (const Edge& e : edges_) {
    dot += "  \"" + escape(e.from) + "\" -> \"" + escape(e.to) +
           "\" [label=\"" + escape(e.label) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace alert::analysis_tools
