/// \file rules_concurrency.cpp
/// The whole-program rule families built on ProgramIndex/CallGraph — the
/// static side of the PDES/scale arc (ROADMAP items 1 and 3):
///
///   rng-discipline      randomness must flow from the replication-forked
///                       util::Rng — no entropy/time seeding, no RNG engines
///                       captured by reference into ThreadPool worker tasks
///   wallclock-in-sim    no host clock read reachable (through calls) from
///                       simulated-time code; obs profiling is allowlisted
///   lock-discipline     state written both inside and outside a worker
///                       task must share a mutex on every write
///   hotpath-allocation  no allocation in functions reachable from event
///                       dispatch, the MAC, or the channel model
///
/// All four run in finish_program() against the one shared index/graph the
/// analyzer builds per scan.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "lint/callgraph.hpp"
#include "lint/index.hpp"
#include "lint/rule.hpp"
#include "lint/rules_detail.hpp"

namespace alert::analysis_tools {

namespace {

/// RNG engine type names (mirrors the indexer's declaration scan).
const std::set<std::string>& rng_engine_types() {
  static const std::set<std::string> kEngines{
      "Rng",          "mt19937",      "mt19937_64",
      "minstd_rand",  "minstd_rand0", "default_random_engine",
      "ranlux24",     "ranlux48",     "knuth_b"};
  return kEngines;
}

/// Entropy/time sources that must never seed an RNG: seeds derived from
/// them differ run to run, so replications stop being reproducible.
const std::set<std::string>& entropy_sources() {
  static const std::set<std::string> kEntropy{
      "time",         "clock",        "gettimeofday",
      "clock_gettime", "system_clock", "steady_clock",
      "high_resolution_clock", "random_device", "getpid"};
  return kEntropy;
}

/// First entropy-source identifier in code tokens (open, close), or "".
std::string entropy_in_args(const CodeView& v, std::size_t open,
                            std::size_t close) {
  for (std::size_t k = open + 1; k < close; ++k) {
    if (v.tok(k).kind == TokenKind::Identifier &&
        entropy_sources().count(v.tok(k).text) != 0) {
      return v.tok(k).text;
    }
  }
  return {};
}

/// rng-discipline: seeds must come from the experiment configuration and
/// flow down through util::Rng::fork(stream); entropy-seeded or worker-
/// shared engines make replications irreproducible (and racy). The RNG
/// implementation itself is exempt, like raw-random's rng_impl_paths.
class RngDisciplineRule final : public Rule {
 public:
  explicit RngDisciplineRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"rng-discipline",
             "randomness outside the replication-forked RNG",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    (void)graph;
    for (const FunctionInfo& fn : index.functions()) {
      if (AnalyzerConfig::path_in(fn.file->rel_path, cfg_->rng_impl_paths))
        continue;
      const CodeView v(*fn.file);
      check_seeding(v, fn, sink);
      check_worker_captures(v, fn, index, sink);
    }
  }

 private:
  void check_seeding(const CodeView& v, const FunctionInfo& fn, Sink& sink) {
    for (std::size_t j = fn.body_begin + 1; j < fn.body_end; ++j) {
      const Token& t = v.tok(j);
      if (t.kind != TokenKind::Identifier) continue;
      // srand(...) / engine.seed(...) / reseed(...) with an entropy arg.
      if ((t.text == "srand" || t.text == "seed" || t.text == "reseed") &&
          v.is_punct(j + 1, "(")) {
        const std::size_t close = v.matching(j + 1, "(", ")");
        if (close >= fn.body_end) continue;
        const std::string src = entropy_in_args(v, j + 1, close);
        if (!src.empty()) {
          sink.emit(info_, *fn.file, t.line, t.column,
                    "RNG seeded from entropy/time source '" + src +
                        "' — seeds must come from the scenario config and "
                        "flow through util::Rng::fork(stream) so "
                        "replications stay reproducible");
        }
        continue;
      }
      // EngineType name(<entropy>) / EngineType name{<entropy>} declaration.
      if (rng_engine_types().count(t.text) != 0 && j + 2 < fn.body_end &&
          v.tok(j + 1).kind == TokenKind::Identifier) {
        const bool paren = v.is_punct(j + 2, "(");
        if (!paren && !v.is_punct(j + 2, "{")) continue;
        const std::size_t close = paren ? v.matching(j + 2, "(", ")")
                                        : v.matching(j + 2, "{", "}");
        if (close >= fn.body_end) continue;
        const std::string src = entropy_in_args(v, j + 2, close);
        if (!src.empty()) {
          sink.emit(info_, *fn.file, t.line, t.column,
                    "RNG '" + v.tok(j + 1).text +
                        "' constructed from entropy/time source '" + src +
                        "' — seeds must come from the scenario config and "
                        "flow through util::Rng::fork(stream) so "
                        "replications stay reproducible");
        }
      }
    }
  }

  void check_worker_captures(const CodeView& v, const FunctionInfo& fn,
                             const ProgramIndex& index, Sink& sink) {
    const std::set<std::string>& rngs = index.rng_vars(fn.file->rel_path);
    if (rngs.empty()) return;
    for (const LambdaInfo& lam : fn.lambdas) {
      if (!lam.worker) continue;
      std::set<std::string> flagged;
      for (const Capture& c : lam.captures) {
        if (!c.is_default && c.by_ref && rngs.count(c.name) != 0 &&
            flagged.insert(c.name).second) {
          sink.emit(info_, *fn.file, lam.line, v.tok(lam.intro).column,
                    "RNG '" + c.name +
                        "' captured by reference into a ThreadPool worker "
                        "task — concurrent draws race and the draw order "
                        "depends on scheduling; fork a per-task stream "
                        "(rng.fork(stream)) instead");
        }
      }
      if (!lam.has_default_ref()) continue;
      const std::set<std::string> locals =
          declared_names(*fn.file, lam.body_begin, lam.body_end);
      for (std::size_t j = lam.body_begin + 1; j < lam.body_end; ++j) {
        const Token& t = v.tok(j);
        if (t.kind != TokenKind::Identifier || rngs.count(t.text) == 0)
          continue;
        if (v.prev_is_accessor(j)) continue;
        if (lam.params.count(t.text) != 0 || locals.count(t.text) != 0)
          continue;
        if (flagged.insert(t.text).second) {
          sink.emit(info_, *fn.file, t.line, t.column,
                    "RNG '" + t.text +
                        "' reaches a ThreadPool worker task through a "
                        "default by-reference capture — concurrent draws "
                        "race and the draw order depends on scheduling; "
                        "fork a per-task stream (rng.fork(stream)) instead");
        }
      }
    }
  }

  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// wallclock-in-sim: simulated time (core/, sim/, routing/) must never
/// observe host time, directly or through calls — the determinism digests
/// and the paper's latency metrics are defined over sim::Time alone. The
/// obs self-profiler reads host clocks by design and never feeds digests,
/// so clock reads in wallclock_exempt_paths are not sources. Direct reads
/// inside the legacy wall-clock dirs stay the per-file wall-clock rule's
/// job; this rule adds the transitive closure and the remaining simtime
/// dirs (core/).
class WallclockInSimRule final : public Rule {
 public:
  explicit WallclockInSimRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"wallclock-in-sim",
             "host clock reachable from simulated-time code",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    const std::vector<FunctionInfo>& fns = index.functions();
    std::vector<std::size_t> sources;
    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
      if (!fns[fi].clock_uses.empty() &&
          !AnalyzerConfig::path_in(fns[fi].file->rel_path,
                                   cfg_->wallclock_exempt_paths)) {
        sources.push_back(fi);
      }
    }
    const CallGraph::ReverseReach rev = graph.reach_reverse(sources);

    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
      const FunctionInfo& fn = fns[fi];
      if (!AnalyzerConfig::path_in(fn.file->rel_path, cfg_->simtime_dirs))
        continue;
      if (!fn.clock_uses.empty()) {
        // Direct read. The per-file wall-clock rule owns the legacy dirs;
        // report only simtime dirs it does not cover (core/).
        if (!AnalyzerConfig::path_in(fn.file->rel_path,
                                     cfg_->wall_clock_dirs)) {
          const ClockUse& use = fn.clock_uses.front();
          sink.emit(info_, *fn.file, use.line, use.column,
                    "'" + fn.qualified + "' reads host clock " + use.what +
                        " in digest-sensitive simulated-time code — use "
                        "sim::Time, or move host timing into an obs "
                        "profiling scope");
        }
        continue;
      }
      if (rev.reached[fi] == 0 || rev.via[fi] == nullptr) continue;
      // Transitive: follow the hop chain to the ultimate clock reader.
      std::size_t src = fi;
      while (rev.next[src] != CallGraph::npos) src = rev.next[src];
      const FunctionInfo& reader = fns[src];
      const ClockUse& use = reader.clock_uses.front();
      sink.emit(info_, *fn.file, rev.via[fi]->line, rev.via[fi]->column,
                "'" + fn.qualified +
                    "' is simulated-time code but reaches a host clock "
                    "read: " + graph.chain(rev, fi) + "; '" +
                    reader.qualified + "' reads " + use.what + " (" +
                    reader.file->rel_path + ":" + std::to_string(use.line) +
                    ") — use sim::Time, or move host timing into an obs "
                    "profiling scope");
    }
  }

 private:
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// lock-discipline: a name written inside a ThreadPool worker task and
/// written again (in another task instance or outside the task) must hold
/// the same mutex at every write. The capability map comes from
/// std::lock_guard/scoped_lock/unique_lock/shared_lock sites; a write is
/// "shared" when it targets a member (trailing underscore) or a variable
/// captured by reference. Element-disjoint writes (results[slot] per unit)
/// are a legitimate pattern — prove the disjointness in a waiver.
class LockDisciplineRule final : public Rule {
 public:
  explicit LockDisciplineRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"lock-discipline",
             "worker-task writes lack a common mutex guard",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    (void)graph;
    for (const FunctionInfo& fn : index.functions()) {
      bool has_worker = false;
      for (const LambdaInfo& lam : fn.lambdas) has_worker |= lam.worker;
      if (!has_worker) continue;

      // Lambda-local declarations, resolved lazily per lambda.
      std::map<int, std::set<std::string>> locals;
      auto lambda_locals = [&](int li) -> const std::set<std::string>& {
        auto it = locals.find(li);
        if (it == locals.end()) {
          const LambdaInfo& lam = fn.lambdas[static_cast<std::size_t>(li)];
          it = locals
                   .emplace(li, declared_names(*fn.file, lam.body_begin,
                                               lam.body_end))
                   .first;
        }
        return it->second;
      };

      std::map<std::string, std::vector<const WriteSite*>> by_target;
      for (const WriteSite& w : fn.writes) {
        if (w.in_worker && !is_shared(fn, w, lambda_locals)) continue;
        by_target[w.target].push_back(&w);
      }
      for (const auto& [target, writes] : by_target) {
        const WriteSite* first_worker = nullptr;
        std::size_t worker_writes = 0;
        for (const WriteSite* w : writes) {
          if (!w->in_worker) continue;
          ++worker_writes;
          if (first_worker == nullptr) first_worker = w;
        }
        if (first_worker == nullptr || writes.size() < 2) continue;
        // Intersect held mutexes across every write of the target.
        std::set<std::string> common = writes.front()->held_mutexes;
        for (const WriteSite* w : writes) {
          std::set<std::string> next;
          for (const std::string& m : w->held_mutexes) {
            if (common.count(m) != 0) next.insert(m);
          }
          common = std::move(next);
        }
        if (!common.empty()) continue;
        std::string lines;
        for (const WriteSite* w : writes) {
          if (!lines.empty()) lines += ", ";
          lines += std::to_string(w->line);
        }
        sink.emit(info_, *fn.file, first_worker->line, first_worker->column,
                  "'" + target + "' is written from a ThreadPool worker "
                      "task and again elsewhere (lines " + lines +
                      ") with no common mutex in '" + fn.qualified +
                      "' — guard every write with the same "
                      "std::scoped_lock, or prove the writes disjoint "
                      "(e.g. one pre-sized slot per task) and waive");
      }
    }
  }

 private:
  template <typename LambdaLocals>
  bool is_shared(const FunctionInfo& fn, const WriteSite& w,
                 LambdaLocals& lambda_locals) const {
    const std::string base = w.target.substr(0, w.target.find('.'));
    if (!base.empty() && base.back() == '_') return true;  // member
    if (w.lambda < 0) return true;
    const LambdaInfo& lam = fn.lambdas[static_cast<std::size_t>(w.lambda)];
    if (lam.captures_by_ref(base)) return true;
    if (lam.has_default_ref() && lam.params.count(base) == 0 &&
        lambda_locals(w.lambda).count(base) == 0) {
      return true;
    }
    return false;
  }

  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

/// hotpath-allocation: the per-event path (Simulator dispatch, MAC
/// acquisition, channel fate decisions, packet delivery) runs millions of
/// times per replication — ROADMAP item 1 targets 100k–1M nodes, where any
/// allocation here dominates the profile. Findings aggregate per
/// (function, allocation kind) with the reachability chain in the message;
/// deliberate allocations get a waiver naming the pooling plan.
class HotpathAllocationRule final : public Rule {
 public:
  explicit HotpathAllocationRule(const AnalyzerConfig& cfg) : cfg_(&cfg) {
    info_ = {"hotpath-allocation",
             "allocation in the event/MAC/channel hot path",
             Severity::Error};
  }
  [[nodiscard]] const RuleInfo& info() const override { return info_; }

  void finish_program(const ProgramIndex& index, const CallGraph& graph,
                      Sink& sink) override {
    std::vector<std::size_t> roots;
    for (const std::string& spec : cfg_->hotpath_roots) {
      for (const std::size_t fi : graph.match(spec)) roots.push_back(fi);
    }
    if (roots.empty()) return;
    const CallGraph::Reachability r = graph.reach(roots);

    const std::vector<FunctionInfo>& fns = index.functions();
    for (std::size_t fi = 0; fi < fns.size(); ++fi) {
      if (r.reached[fi] == 0 || fns[fi].allocs.empty()) continue;
      const FunctionInfo& fn = fns[fi];
      struct KindAgg {
        const AllocSite* first = nullptr;
        std::size_t count = 0;
      };
      std::map<AllocSite::Kind, KindAgg> agg;
      std::vector<AllocSite::Kind> order;
      for (const AllocSite& a : fn.allocs) {
        KindAgg& k = agg[a.kind];
        if (k.first == nullptr) {
          k.first = &a;
          order.push_back(a.kind);
        }
        ++k.count;
      }
      for (const AllocSite::Kind kind : order) {
        const KindAgg& k = agg[kind];
        const std::string more =
            k.count > 1
                ? " (+" + std::to_string(k.count - 1) + " more in this "
                      "function)"
                : std::string();
        sink.emit(info_, *fn.file, k.first->line, k.first->column,
                  std::string(alloc_kind_name(kind)) + " '" + k.first->what +
                      "' in '" + fn.qualified + "', reachable from the hot "
                      "path: " + graph.chain(r, fi) + more +
                      " — pre-allocate or pool (ROADMAP scale item)");
      }
    }
  }

 private:
  const AnalyzerConfig* cfg_;
  RuleInfo info_;
};

}  // namespace

namespace detail {

std::unique_ptr<Rule> make_rng_discipline(const AnalyzerConfig& c) {
  return std::make_unique<RngDisciplineRule>(c);
}
std::unique_ptr<Rule> make_wallclock_in_sim(const AnalyzerConfig& c) {
  return std::make_unique<WallclockInSimRule>(c);
}
std::unique_ptr<Rule> make_lock_discipline(const AnalyzerConfig& c) {
  return std::make_unique<LockDisciplineRule>(c);
}
std::unique_ptr<Rule> make_hotpath_allocation(const AnalyzerConfig& c) {
  return std::make_unique<HotpathAllocationRule>(c);
}

}  // namespace detail

}  // namespace alert::analysis_tools
