#include "lint/structure.hpp"

namespace alert::analysis_tools {

std::vector<SwitchInfo> collect_switches(const CodeView& v) {
  std::vector<SwitchInfo> out;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) {
    if (!(v.is_ident(i, "switch") && v.is_punct(i + 1, "("))) continue;
    const std::size_t close = v.matching(i + 1, "(", ")");
    if (close == v.size() || !v.is_punct(close + 1, "{")) continue;
    const std::size_t end = v.matching(close + 1, "{", "}");
    SwitchInfo sw;
    sw.line = v.tok(i).line;
    sw.column = v.tok(i).column;
    for (std::size_t j = close + 2; j < end; ++j) {
      if (v.is_ident(j, "default") && v.is_punct(j + 1, ":")) {
        sw.has_default = true;
      } else if (v.is_ident(j, "case")) {
        // Qualified chain: ident (:: ident)* up to the label ':'.
        std::vector<std::string> parts;
        std::size_t k = j + 1;
        while (k < end && v.tok(k).kind == TokenKind::Identifier) {
          parts.push_back(v.tok(k).text);
          if (v.is_punct(k + 1, "::")) {
            k += 2;
          } else {
            ++k;
            break;
          }
        }
        if (!v.is_punct(k, ":")) continue;
        if (parts.size() >= 2) {
          sw.cases.emplace_back(parts[parts.size() - 2], parts.back());
        } else if (parts.size() == 1) {
          sw.cases.emplace_back(std::string(), parts.back());
        }
        j = k;
      }
    }
    out.push_back(std::move(sw));
  }
  return out;
}

bool parse_enum_definition(const CodeView& v, std::size_t i,
                           std::string* name,
                           std::vector<std::string>* enumerators,
                           std::size_t* line) {
  if (!v.is_ident(i, "enum")) return false;
  std::size_t j = i + 1;
  if (v.is_ident(j, "class") || v.is_ident(j, "struct")) ++j;
  if (j >= v.size() || v.tok(j).kind != TokenKind::Identifier) return false;
  *name = v.tok(j).text;
  *line = v.tok(i).line;
  ++j;
  // Optional underlying type runs to '{'; a ';' first means forward decl.
  while (j < v.size() && !v.is_punct(j, "{")) {
    if (v.is_punct(j, ";")) return false;
    ++j;
  }
  if (j >= v.size()) return false;
  const std::size_t end = v.matching(j, "{", "}");
  std::size_t depth = 0;
  bool expect_name = true;
  for (std::size_t k = j + 1; k < end; ++k) {
    const std::string& t = v.tok(k).text;
    if (t == "(" || t == "[" || t == "{") {
      ++depth;
    } else if (t == ")" || t == "]" || t == "}") {
      --depth;
    } else if (depth == 0 && t == ",") {
      expect_name = true;
    } else if (depth == 0 && expect_name &&
               v.tok(k).kind == TokenKind::Identifier) {
      enumerators->push_back(t);
      expect_name = false;
    }
  }
  return true;
}

std::string join(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ", ";
    out += p;
  }
  return out;
}

}  // namespace alert::analysis_tools
