#pragma once

/// \file lexer.hpp
/// Single-pass C++ lexer for the analyzer. It is a *lexer*, not a parser:
/// it classifies the character stream into tokens (identifiers, literals,
/// punctuation, comments, preprocessor logical lines) with exact line/column
/// positions, which is all the rule layer needs. Understands line and block
/// comments, string/char literals with escapes, raw string literals
/// (R"delim(...)delim" with encoding prefixes), digit separators, and
/// backslash-newline continuations inside preprocessor directives.

#include <string_view>

#include "lint/token.hpp"

namespace alert::analysis_tools {

/// Lex `source` into a token stream. Never fails: malformed input (an
/// unterminated literal or comment) produces a final token running to end
/// of file, mirroring how a compiler would diagnose it downstream.
[[nodiscard]] TokenStream lex(std::string_view source);

}  // namespace alert::analysis_tools
