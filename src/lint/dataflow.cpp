/// \file dataflow.cpp

#include "lint/dataflow.hpp"

#include <deque>

namespace alert::analysis_tools {

namespace {

std::set<unsigned> transfer(const BlockFacts& f, const std::set<unsigned>& in) {
  std::set<unsigned> out = f.gen;
  for (const unsigned fact : in) {
    if (f.kill.count(fact) == 0) out.insert(fact);
  }
  return out;
}

/// Shared worklist core: `boundary[b]` is the union over `sources(b)` of
/// transfer(facts[s], boundary[s]). Forward uses pred edges, backward succ.
std::vector<std::set<unsigned>> solve(
    const Cfg& cfg, const std::vector<BlockFacts>& facts, bool forward) {
  const std::size_t n = cfg.blocks.size();
  std::vector<std::set<unsigned>> boundary(n);
  std::deque<std::size_t> queue;
  std::vector<char> queued(n, 1);
  for (std::size_t b = 0; b < n; ++b) queue.push_back(b);
  while (!queue.empty()) {
    const std::size_t b = queue.front();
    queue.pop_front();
    queued[b] = 0;
    const auto& sources = forward ? cfg.blocks[b].pred : cfg.blocks[b].succ;
    std::set<unsigned> next;
    for (const std::size_t s : sources) {
      const std::set<unsigned> out =
          transfer(s < facts.size() ? facts[s] : BlockFacts{}, boundary[s]);
      next.insert(out.begin(), out.end());
    }
    if (next == boundary[b]) continue;
    boundary[b] = std::move(next);
    const auto& sinks = forward ? cfg.blocks[b].succ : cfg.blocks[b].pred;
    for (const std::size_t s : sinks) {
      if (queued[s] == 0) {
        queued[s] = 1;
        queue.push_back(s);
      }
    }
  }
  return boundary;
}

}  // namespace

std::vector<std::set<unsigned>> solve_forward(
    const Cfg& cfg, const std::vector<BlockFacts>& facts) {
  return solve(cfg, facts, true);
}

std::vector<std::set<unsigned>> solve_backward(
    const Cfg& cfg, const std::vector<BlockFacts>& facts) {
  return solve(cfg, facts, false);
}

}  // namespace alert::analysis_tools
