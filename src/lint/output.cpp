#include "lint/output.hpp"

#include "obs/json.hpp"

namespace alert::analysis_tools {

void write_text(std::ostream& out, const ScanReport& report) {
  for (const Finding& f : report.findings) {
    out << f.path << ':' << f.line << ':' << f.column << ": "
        << severity_name(f.severity) << ": " << f.message << " [" << f.rule
        << "]\n";
  }
  for (const std::string& s : report.stale_baseline) {
    out << "stale baseline entry (delete it): " << s << '\n';
  }
  out << report.files_scanned << " file(s) scanned, "
      << report.findings.size() << " finding(s) (" << report.error_count()
      << " error(s)), " << report.waived << " waived, "
      << report.baseline_applied << " baselined";
  if (!report.stale_baseline.empty()) {
    out << ", " << report.stale_baseline.size() << " stale baseline entr"
        << (report.stale_baseline.size() == 1 ? "y" : "ies");
  }
  out << '\n';
}

namespace {

void write_finding_fields(obs::JsonWriter& w, const Finding& f) {
  w.field("rule", f.rule);
  w.field("path", f.path);
  w.field("line", static_cast<std::uint64_t>(f.line));
  w.field("column", static_cast<std::uint64_t>(f.column));
  w.field("severity", severity_name(f.severity));
  w.field("message", f.message);
}

}  // namespace

void write_json(std::ostream& out, const ScanReport& report) {
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("tool", "alertsim-analyzer");
  w.field("files_scanned", static_cast<std::uint64_t>(report.files_scanned));
  w.field("waived", static_cast<std::uint64_t>(report.waived));
  w.field("baseline_applied",
          static_cast<std::uint64_t>(report.baseline_applied));
  w.key("findings");
  w.begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    write_finding_fields(w, f);
    w.end_object();
  }
  w.end_array();
  w.key("stale_baseline");
  w.begin_array();
  for (const std::string& s : report.stale_baseline) w.value(s);
  w.end_array();
  w.end_object();
  out << '\n';
}

void write_sarif(std::ostream& out, const ScanReport& report,
                 const std::vector<RuleInfo>& rules) {
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("$schema",
          "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
          "Schemata/sarif-schema-2.1.0.json");
  w.field("version", "2.1.0");
  w.key("runs");
  w.begin_array();
  w.begin_object();

  w.key("tool");
  w.begin_object();
  w.key("driver");
  w.begin_object();
  w.field("name", "alertsim-analyzer");
  w.field("informationUri", "docs/VERIFICATION.md");
  w.key("rules");
  w.begin_array();
  for (const RuleInfo& r : rules) {
    w.begin_object();
    w.field("id", r.id);
    w.key("shortDescription");
    w.begin_object();
    w.field("text", r.description);
    w.end_object();
    w.key("defaultConfiguration");
    w.begin_object();
    w.field("level", r.severity == Severity::Error ? "error" : "warning");
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();  // driver
  w.end_object();  // tool

  w.key("results");
  w.begin_array();
  for (const Finding& f : report.findings) {
    w.begin_object();
    w.field("ruleId", f.rule);
    w.field("level", f.severity == Severity::Error ? "error" : "warning");
    w.key("message");
    w.begin_object();
    w.field("text", f.message);
    w.end_object();
    w.key("locations");
    w.begin_array();
    w.begin_object();
    w.key("physicalLocation");
    w.begin_object();
    w.key("artifactLocation");
    w.begin_object();
    w.field("uri", f.path);
    w.field("uriBaseId", "SRCROOT");
    w.end_object();
    w.key("region");
    w.begin_object();
    w.field("startLine", static_cast<std::uint64_t>(f.line));
    w.field("startColumn",
            static_cast<std::uint64_t>(f.column == 0 ? 1 : f.column));
    w.end_object();
    w.end_object();  // physicalLocation
    w.end_object();  // location
    w.end_array();
    w.end_object();  // result
  }
  w.end_array();
  w.end_object();  // run
  w.end_array();
  w.end_object();
  out << '\n';
}

}  // namespace alert::analysis_tools
