#pragma once

/// \file index.hpp
/// Cross-translation-unit symbol/scope indexer. One pass over each file's
/// token stream (pure per-file work — run in the parallel lex phase) finds
/// function definitions and collects per-function facts: call sites, lambda
/// captures, lock-guard acquisitions, member/captured-state writes, host
/// clock reads, and allocation sites. ProgramIndex assembles the per-file
/// slices into a program-wide view that whole-program rules query in their
/// serial finish_program() phase; the call graph over it lives in
/// lint/callgraph.hpp. Everything here is a token-level heuristic — no
/// semantic analysis — so rules built on it must tolerate (and the fixture
/// self-tests pin) the usual over/under-approximation trade-offs.

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lint/file_data.hpp"

namespace alert::analysis_tools {

/// One entry of a lambda's capture list.
struct Capture {
  std::string name;         ///< empty for [&] / [=] defaults and `this`
  bool by_ref = false;
  bool is_default = false;  ///< a bare [&] or [=]
  bool is_this = false;
};

struct LambdaInfo {
  std::size_t intro = 0;       ///< code index of '['
  std::size_t body_begin = 0;  ///< code index of the body '{'
  std::size_t body_end = 0;    ///< code index of the matching '}'
  std::size_t line = 0;
  std::vector<Capture> captures;
  std::set<std::string> params;  ///< parameter names
  /// True when the lambda is an argument of a worker entry point
  /// (ThreadPool::submit / parallel_for) — its body runs on pool threads.
  bool worker = false;

  [[nodiscard]] bool captures_by_ref(const std::string& name) const {
    for (const Capture& c : captures) {
      if (!c.is_default && c.by_ref && c.name == name) return true;
    }
    return false;
  }
  [[nodiscard]] bool has_default_ref() const {
    for (const Capture& c : captures) {
      if (c.is_default && c.by_ref) return true;
    }
    return false;
  }
};

struct CallSite {
  std::string callee;     ///< bare callee name
  std::string qualifier;  ///< `Class` for Class::f, object name for o.f()
  bool scope_qualified = false;  ///< qualifier came via `::`
  std::size_t tok = 0;           ///< code index of the callee identifier
  std::size_t line = 0;
  std::size_t column = 0;
  /// Mutexes held (by enclosing RAII guards) when the call executes — the
  /// lock graph charges the callee's acquisitions against these.
  std::set<std::string> held;
};

/// A std::lock_guard / scoped_lock / unique_lock / shared_lock declaration.
struct LockSite {
  std::vector<std::string> mutexes;  ///< normalized operand expressions
  std::size_t tok = 0;               ///< code index of the guard keyword
  std::size_t line = 0;
  std::size_t column = 0;
  /// Mutexes already held when this guard is constructed (acquisition
  /// order: each held mutex precedes each of `mutexes` in the lock graph;
  /// mutexes acquired together by one scoped_lock are unordered).
  std::set<std::string> held;
};

/// A write (assignment, ++/--, or mutating container call) to a member
/// chain. `target` has subscripts elided ("results[i].x = 1" -> "results")
/// so element writes to one container group under one name.
struct WriteSite {
  std::string target;
  std::size_t tok = 0;
  std::size_t line = 0;
  std::size_t column = 0;
  int lambda = -1;        ///< index into FunctionInfo::lambdas, -1 = none
  bool in_worker = false;
  /// Mutexes held at the write (union of enclosing-scope lock sites).
  std::set<std::string> held_mutexes;
};

struct ClockUse {
  std::string what;  ///< "std::chrono::steady_clock", "time()", ...
  std::size_t line = 0;
  std::size_t column = 0;
};

struct AllocSite {
  enum class Kind { New, MakeShared, StdFunction, Grow };
  Kind kind = Kind::New;
  std::string what;  ///< "new", "make_shared", "push_back", ...
  std::size_t line = 0;
  std::size_t column = 0;
};

[[nodiscard]] const char* alloc_kind_name(AllocSite::Kind k);

struct FunctionInfo {
  std::string name;       ///< bare name
  std::string qualified;  ///< "Class::name" when determinable, else name
  const FileData* file = nullptr;
  std::size_t line = 0;
  std::size_t body_begin = 0;  ///< code index of the body '{'
  std::size_t body_end = 0;    ///< code index of the matching '}'
  std::vector<CallSite> calls;
  std::vector<LambdaInfo> lambdas;
  std::vector<LockSite> locks;
  std::vector<WriteSite> writes;
  std::vector<ClockUse> clock_uses;
  std::vector<AllocSite> allocs;
};

/// Per-file slice of the program index. Pure function of one FileData, so
/// the analyzer builds slices inside the parallel per-file phase.
struct FileIndex {
  std::vector<FunctionInfo> functions;
  /// Variable names declared in this file with an RNG-engine type
  /// (util::Rng, std::mt19937, ...) or an unmistakably RNG-ish name.
  std::set<std::string> rng_vars;
};

/// Worker entry points assumed when none are supplied: util::ThreadPool's
/// submit() and parallel_for(). Mirrors AnalyzerConfig::worker_entry_points.
[[nodiscard]] const std::vector<std::string>& default_worker_entry_points();

[[nodiscard]] FileIndex index_file(const FileData& file);
[[nodiscard]] FileIndex index_file(
    const FileData& file, const std::vector<std::string>& worker_entry_points);

/// Names heuristically declared inside the code-token range [begin, end):
/// an identifier preceded by a type-ish token (identifier, '&', '*', '>')
/// and followed by '=', ';', ',', ':', ')', '{' or '('.
[[nodiscard]] std::set<std::string> declared_names(const FileData& file,
                                                  std::size_t begin,
                                                  std::size_t end);

/// Program-wide view: every function of every scanned file, with name and
/// qualified-name lookup. Built once per scan and shared by all rules.
class ProgramIndex {
 public:
  /// Assemble pre-built slices; `slices[i]` must be index_file(files[i]).
  ProgramIndex(const std::vector<FileData>& files,
               std::vector<FileIndex> slices);
  /// Serial convenience build (tests; callers without a thread pool).
  explicit ProgramIndex(const std::vector<FileData>& files);

  [[nodiscard]] const std::vector<FunctionInfo>& functions() const {
    return functions_;
  }
  /// Indices of functions with this bare name, in file/definition order.
  [[nodiscard]] const std::vector<std::size_t>& by_name(
      const std::string& name) const;
  /// Indices of functions whose qualified name is "Class::name".
  [[nodiscard]] const std::vector<std::size_t>& by_qualified(
      const std::string& qualified) const;
  /// RNG-typed variable names declared in `rel_path` (empty set if none).
  [[nodiscard]] const std::set<std::string>& rng_vars(
      const std::string& rel_path) const;

 private:
  std::vector<FunctionInfo> functions_;
  std::map<std::string, std::vector<std::size_t>> by_name_;
  std::map<std::string, std::vector<std::size_t>> by_qualified_;
  std::map<std::string, std::set<std::string>> rng_vars_;
};

}  // namespace alert::analysis_tools
