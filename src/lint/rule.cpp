#include "lint/rule.hpp"

#include <algorithm>
#include <utility>

namespace alert::analysis_tools {

void Sink::emit(const RuleInfo& rule, const FileData& file, std::size_t line,
                std::size_t column, std::string message) {
  std::lock_guard<std::mutex> lk(mutex_);
  if (config_->disabled_rules.count(rule.id) != 0) return;
  if (file.waived(line, rule.id)) {
    ++waived_;
    return;
  }
  Finding f;
  f.rule = rule.id;
  f.path = file.rel_path;
  f.line = line;
  f.column = column;
  f.message = std::move(message);
  f.severity = rule.severity;
  const auto it = config_->severity_overrides.find(rule.id);
  if (it != config_->severity_overrides.end()) f.severity = it->second;
  findings_.push_back(std::move(f));
}

std::vector<Finding> Sink::take() {
  std::lock_guard<std::mutex> lk(mutex_);
  std::sort(findings_.begin(), findings_.end());
  findings_.erase(std::unique(findings_.begin(), findings_.end()),
                  findings_.end());
  return std::move(findings_);
}

}  // namespace alert::analysis_tools
