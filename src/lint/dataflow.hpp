#pragma once

/// \file dataflow.hpp
/// A small gen/kill dataflow engine over lint CFGs. Facts are dense
/// unsigned ids (the caller owns the numbering); the join is set union, so
/// both directions compute may-information — the conservative side for
/// diagnosis rules (a fact that *may* hold on some path is worth warning
/// about; one that must hold on all paths is a subset). The solver is a
/// plain worklist iteration; transfer functions are monotone
/// (OUT = gen ∪ (IN − kill)), so it terminates at the least fixpoint in
/// O(blocks × facts) set operations.

#include <cstddef>
#include <set>
#include <vector>

#include "lint/cfg.hpp"

namespace alert::analysis_tools {

/// Per-block transfer summary. `gen` facts hold after the block regardless
/// of entry state; `kill` facts are cancelled by the block. When one fact is
/// in both, gen wins (the block's last action asserted it).
struct BlockFacts {
  std::set<unsigned> gen;
  std::set<unsigned> kill;
};

/// Forward may-analysis: returns IN[b] for every block — the union of
/// OUT over predecessors, with IN[entry] = {}.
[[nodiscard]] std::vector<std::set<unsigned>> solve_forward(
    const Cfg& cfg, const std::vector<BlockFacts>& facts);

/// Backward may-analysis: returns OUT[b] for every block — the union of
/// IN over successors, with OUT[exit] = {} (IN[b] = gen ∪ (OUT[b] − kill)).
[[nodiscard]] std::vector<std::set<unsigned>> solve_backward(
    const Cfg& cfg, const std::vector<BlockFacts>& facts);

}  // namespace alert::analysis_tools
