#pragma once

/// \file baseline.hpp
/// Grandfathered findings. A baseline file commits known, justified
/// violations so the analyzer can gate on *new* findings only. One entry
/// per line:
///
///     <rule> <path> <fingerprint-hex16> <reason...>
///
/// '#' starts a comment; blank lines are ignored. The fingerprint hashes
/// the rule id, the path and the whitespace-squeezed source line, so
/// entries survive reformatting and line-number drift but go stale when
/// the offending code actually changes — stale entries are reported so
/// the file cannot silently rot. The reason is mandatory: a baseline
/// entry without a justification is a violation with extra steps.

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "lint/finding.hpp"

namespace alert::analysis_tools {

/// FNV-1a 64 over rule NUL path NUL squeezed-line. Stable across platforms.
[[nodiscard]] std::uint64_t baseline_fingerprint(std::string_view rule,
                                                 std::string_view path,
                                                 std::string_view source_line);

/// The 1-based line of `source`, without the trailing newline; empty when
/// out of range.
[[nodiscard]] std::string_view source_line_text(std::string_view source,
                                                std::size_t line);

struct BaselineEntry {
  std::string rule;
  std::string path;
  std::uint64_t fingerprint = 0;
  std::string reason;
  bool used = false;  ///< matched a finding during filtering
};

class Baseline {
 public:
  /// Parse baseline text. Malformed lines (missing fields, bad hex, empty
  /// reason) are collected into `errors` as "line N: why"; parsing
  /// continues so one typo does not hide the rest of the file.
  [[nodiscard]] static Baseline parse(std::string_view text,
                                      std::vector<std::string>* errors);

  /// True (and marks the entry used) when a matching entry exists for this
  /// finding; `source_line` is the finding's line text.
  [[nodiscard]] bool absorbs(const Finding& finding,
                             std::string_view source_line);

  /// Entries never matched by a finding — stale, should be deleted.
  [[nodiscard]] std::vector<const BaselineEntry*> stale() const;

  /// Rewrite the original baseline text dropping lines whose entry went
  /// stale in this scan (--prune-baseline). Comments, blank lines and
  /// malformed lines pass through untouched — pruning must never eat a
  /// hand-written note or hide a parse error.
  [[nodiscard]] std::string prune(std::string_view original_text) const;

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Serialize findings as a fresh baseline file (for --write-baseline).
  /// Reasons default to a TODO marker the parser accepts but humans should
  /// replace.
  [[nodiscard]] static std::string render(
      const std::vector<Finding>& findings,
      const std::vector<std::string_view>& source_lines);

 private:
  std::vector<BaselineEntry> entries_;
};

}  // namespace alert::analysis_tools
