#include "lint/baseline.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <set>
#include <tuple>

namespace alert::analysis_tools {

namespace {

/// Collapse every whitespace run to one space and trim the ends, so the
/// fingerprint survives reformatting.
std::string squeeze(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool pending_space = false;
  for (const char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      pending_space = !out.empty();
    } else {
      if (pending_space) out.push_back(' ');
      pending_space = false;
      out.push_back(c);
    }
  }
  return out;
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void fnv(std::uint64_t& h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  h ^= 0;  // NUL separator
  h *= kFnvPrime;
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

std::uint64_t baseline_fingerprint(std::string_view rule,
                                   std::string_view path,
                                   std::string_view source_line) {
  std::uint64_t h = kFnvOffset;
  fnv(h, rule);
  fnv(h, path);
  fnv(h, squeeze(source_line));
  return h;
}

std::string_view source_line_text(std::string_view source, std::size_t line) {
  std::size_t begin = 0;
  for (std::size_t n = 1; n < line; ++n) {
    const std::size_t nl = source.find('\n', begin);
    if (nl == std::string_view::npos) return {};
    begin = nl + 1;
  }
  if (line == 0 || begin >= source.size()) return {};
  const std::size_t end = source.find('\n', begin);
  return source.substr(begin, end == std::string_view::npos ? end
                                                            : end - begin);
}

Baseline Baseline::parse(std::string_view text,
                         std::vector<std::string>* errors) {
  Baseline b;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    ++line_no;
    // Trim and skip blanks/comments.
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
      line.remove_prefix(1);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.remove_suffix(1);
    if (line.empty() || line.front() == '#') continue;

    auto field = [&line]() -> std::string_view {
      const std::size_t sp = line.find_first_of(" \t");
      std::string_view f = line.substr(0, sp);
      line.remove_prefix(sp == std::string_view::npos ? line.size() : sp);
      while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
        line.remove_prefix(1);
      return f;
    };
    BaselineEntry e;
    e.rule = std::string(field());
    e.path = std::string(field());
    const std::string_view fp = field();
    e.reason = std::string(line);  // the rest, spaces preserved
    const char* const fp_end = fp.data() + fp.size();
    const auto [ptr, ec] =
        std::from_chars(fp.data(), fp_end, e.fingerprint, 16);
    if (e.rule.empty() || e.path.empty() || fp.size() != 16 ||
        ec != std::errc() || ptr != fp_end) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(line_no) +
                          ": expected '<rule> <path> <hex16> <reason>'");
      }
      continue;
    }
    if (e.reason.empty()) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(line_no) +
                          ": baseline entries require a reason");
      }
      continue;
    }
    // --write-baseline emits "TODO: justify" placeholders; committing one
    // unedited defeats the whole point of requiring a reason.
    if (e.reason.rfind("TODO", 0) == 0) {
      if (errors != nullptr) {
        errors->push_back("line " + std::to_string(line_no) +
                          ": replace the TODO placeholder with a real "
                          "justification");
      }
      continue;
    }
    b.entries_.push_back(std::move(e));
  }
  return b;
}

bool Baseline::absorbs(const Finding& finding, std::string_view source_line) {
  const std::uint64_t fp =
      baseline_fingerprint(finding.rule, finding.path, source_line);
  bool hit = false;
  for (BaselineEntry& e : entries_) {
    if (e.rule == finding.rule && e.path == finding.path &&
        e.fingerprint == fp) {
      e.used = true;
      hit = true;  // keep scanning: duplicates should all be marked used
    }
  }
  return hit;
}

std::vector<const BaselineEntry*> Baseline::stale() const {
  std::vector<const BaselineEntry*> out;
  for (const BaselineEntry& e : entries_) {
    if (!e.used) out.push_back(&e);
  }
  return out;
}

std::string Baseline::prune(std::string_view original_text) const {
  // Stale (rule, path, fingerprint) triples; duplicates of a used entry
  // were all marked used by absorbs(), so a triple is dropped only when
  // every occurrence idled.
  std::set<std::tuple<std::string, std::string, std::uint64_t>> stale_keys;
  for (const BaselineEntry& e : entries_) {
    if (!e.used) stale_keys.insert({e.rule, e.path, e.fingerprint});
  }
  std::string out;
  std::size_t pos = 0;
  while (pos <= original_text.size()) {
    const std::size_t nl = original_text.find('\n', pos);
    const std::string_view raw = original_text.substr(
        pos, nl == std::string_view::npos ? std::string_view::npos
                                          : nl - pos);
    const bool last = nl == std::string_view::npos;
    pos = last ? original_text.size() + 1 : nl + 1;
    if (last && raw.empty()) break;  // no trailing empty segment

    // Re-parse just enough to recover the triple; anything that does not
    // parse as an entry is preserved verbatim.
    bool keep = true;
    std::string_view line = raw;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
      line.remove_prefix(1);
    if (!line.empty() && line.front() != '#') {
      auto field = [&line]() -> std::string_view {
        const std::size_t sp = line.find_first_of(" \t");
        std::string_view f = line.substr(0, sp);
        line.remove_prefix(sp == std::string_view::npos ? line.size() : sp);
        while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
          line.remove_prefix(1);
        return f;
      };
      const std::string_view rule = field();
      const std::string_view path = field();
      const std::string_view fp = field();
      std::uint64_t value = 0;
      const char* const fp_end = fp.data() + fp.size();
      const auto [ptr, ec] = std::from_chars(fp.data(), fp_end, value, 16);
      if (!rule.empty() && !path.empty() && fp.size() == 16 &&
          ec == std::errc() && ptr == fp_end) {
        keep = stale_keys.count(
                   {std::string(rule), std::string(path), value}) == 0;
      }
    }
    if (keep) {
      out.append(raw);
      out.push_back('\n');
    }
  }
  return out;
}

std::string Baseline::render(
    const std::vector<Finding>& findings,
    const std::vector<std::string_view>& source_lines) {
  std::string out =
      "# alertsim-analyzer baseline — grandfathered findings.\n"
      "# Format: <rule> <path> <fingerprint> <reason>\n"
      "# Replace every TODO reason with a real justification.\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    const std::string_view src =
        i < source_lines.size() ? source_lines[i] : std::string_view();
    out += f.rule + " " + f.path + " " +
           hex16(baseline_fingerprint(f.rule, f.path, src)) +
           " TODO: justify\n";
  }
  return out;
}

}  // namespace alert::analysis_tools
