#pragma once

/// \file analyzer.hpp
/// Scan orchestration: discover sources under a root, lex and run the
/// per-file rules in parallel over util::ThreadPool, run whole-program
/// rules serially, optionally verify header self-sufficiency with the
/// real compiler, then apply the baseline and assemble a ScanReport.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "lint/file_data.hpp"
#include "lint/output.hpp"
#include "lint/rule.hpp"

namespace alert::analysis_tools {

struct AnalyzerOptions {
  std::string root;  ///< directory to scan (e.g. "src")
  AnalyzerConfig config;
  /// Compile each header standalone (`$CXX -std=c++20 -fsyntax-only`).
  /// Needs a toolchain; off by default so pure-token scans stay hermetic.
  bool check_headers = false;
  std::string cxx;  ///< compiler for header checks; "" = $CXX or "g++"
  /// When non-empty, only findings in these rel paths are reported (diff
  /// mode). Whole-program analysis still sees the full tree; stale-baseline
  /// reporting is suppressed because unlisted files legitimately absorb
  /// entries.
  std::vector<std::string> only_paths;
  /// Baseline file contents ("" = no baseline).
  std::string baseline_text;
  /// Rel-path prefixes dropped from the scan entirely (e.g. the analyzer's
  /// own deliberately-broken lint_fixtures/ when scanning tools/).
  std::vector<std::string> exclude_paths;
  /// Rule ids switched off for this scan (e.g. hotpath-allocation over
  /// tests/, where allocation in helpers is fine). Unknown ids are the
  /// driver's problem — it validates against rule_catalog before calling.
  std::vector<std::string> disabled_rules;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
};

/// Per-rule cost/yield accounting for --stats: wall time summed across
/// every phase the rule ran in (parallel check_file time is summed over
/// files, so it can exceed the scan's wall clock) and findings counted
/// before baseline filtering.
struct RuleStat {
  std::string id;
  std::uint64_t wall_ns = 0;
  std::size_t findings = 0;
};

struct AnalyzeResult {
  ScanReport report;
  std::vector<std::string> baseline_errors;  ///< malformed baseline lines
  /// Lexed inputs, sorted by rel_path (the self-test compares these
  /// against EXPECT annotations; --write-baseline needs the source lines).
  std::vector<FileData> files;
  /// Per-rule timing and finding counts, sorted by descending wall time.
  std::vector<RuleStat> rule_stats;
  /// Graphviz rendering of the program lock graph (--lock-graph-dot; the
  /// CI acquisition-order artifact). Always populated — an empty graph is
  /// still a proof.
  std::string lock_graph_dot;
  /// The input baseline with stale entries removed (--prune-baseline).
  /// Only meaningful when a baseline was supplied and the scan was not
  /// path-filtered (diff mode leaves entries legitimately idle).
  std::string pruned_baseline_text;
};

/// Sorted forward-slash rel paths of C++ sources under `root`.
[[nodiscard]] std::vector<std::string> discover_sources(
    const std::string& root);

[[nodiscard]] AnalyzeResult analyze(const AnalyzerOptions& options);

/// The full rule catalog (token rules plus the compiler-backed
/// header-self-sufficiency rule) — for --list-rules and SARIF metadata.
[[nodiscard]] std::vector<RuleInfo> rule_catalog(const AnalyzerConfig& config);

}  // namespace alert::analysis_tools
