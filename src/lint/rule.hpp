#pragma once

/// \file rule.hpp
/// The rule-registry framework. A Rule inspects one file at a time
/// (`check_file`, run in parallel across files) and/or the whole scanned
/// tree (`finish`, run serially afterwards — include-graph and cross-file
/// declaration-sync rules need every file). Findings flow through a Sink,
/// which applies inline waivers, per-rule severity overrides, and exact
/// deduplication (one report per rule/line/message, matching the retired
/// Python linter's one-hit-per-line-per-pattern behaviour).

#include <cstddef>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "lint/file_data.hpp"
#include "lint/finding.hpp"

namespace alert::analysis_tools {

class ProgramIndex;
class CallGraph;

struct RuleInfo {
  std::string id;
  std::string description;       ///< one-line, shown by --list-rules and SARIF
  Severity severity = Severity::Error;
};

/// Everything a rule's behaviour can be configured with. Path entries are
/// forward-slash prefixes relative to the scan root; an entry ending in '/'
/// matches the directory, otherwise it is a file-path prefix.
struct AnalyzerConfig {
  /// raw-random: files implementing the sanctioned RNG (exempt).
  std::vector<std::string> rng_impl_paths{"util/rng.hpp", "util/rng.cpp"};
  /// wall-clock: directories owned by simulated time.
  std::vector<std::string> wall_clock_dirs{"sim/", "net/", "routing/"};
  /// float-type: directories where positions/latencies accumulate.
  std::vector<std::string> float_dirs{"sim/", "net/", "routing/",
                                      "analysis/", "util/geometry"};
  /// raw-stdout: the layers that own stdout (exempt).
  std::vector<std::string> stdout_exempt_paths{"obs/", "util/logging"};
  /// unordered-iteration-ordering: directories that feed canonical/digest
  /// output (scenario codec, experiment aggregation, manifests, cache keys).
  std::vector<std::string> digest_sensitive_dirs{"core/", "obs/",
                                                 "campaign/"};
  /// mutable-global: files sanctioned to hold process-wide mutable state.
  std::vector<std::string> mutable_global_allowlist{"util/check.cpp",
                                                    "util/logging.cpp"};
  /// drop-reason-exhaustive: the canonical net::DropReason enumerator list;
  /// a declaration that drifts from it is itself a violation.
  std::vector<std::string> drop_reason_enumerators{
      "OutOfRange",   "NoHandler", "TtlExpired",
      "ChannelLoss",  "NodeDown",  "RetryExhausted"};
  /// module-layering: allowed direct include edges, module -> dependencies.
  /// Every top-level directory under the scan root that appears in a quoted
  /// include must be listed. Mirrors the DAG in docs/VERIFICATION.md.
  std::map<std::string, std::set<std::string>> module_deps{
      {"util", {}},
      {"analysis", {}},
      {"obs", {"util"}},
      {"crypto", {"util"}},
      {"scale", {"util"}},
      {"sim", {"util", "obs", "scale"}},
      {"faults", {"util", "sim", "obs"}},
      {"net", {"util", "sim", "crypto", "faults", "obs", "scale"}},
      {"loc", {"util", "net", "crypto"}},
      {"routing", {"util", "net", "loc", "crypto", "obs"}},
      {"attack", {"util", "net"}},
      {"core",
       {"util", "sim", "net", "routing", "loc", "crypto", "attack", "obs",
        "faults", "scale"}},
      {"campaign", {"util", "analysis", "core", "obs", "routing"}},
      {"dist", {"util", "obs", "core", "campaign"}},
      {"perf",
       {"util", "obs", "sim", "net", "core", "campaign", "scale", "lint"}},
      {"lint", {"util", "obs"}},
      // Test-only module (tests/integration/): end-to-end suites sit above
      // the whole DAG, so every module is a legal dependency.
      {"integration",
       {"util", "analysis", "obs", "crypto", "sim", "faults", "net", "loc",
        "routing", "attack", "core", "campaign", "dist", "lint", "scale"}},
  };
  /// rng-discipline / lock-discipline: callables whose lambda arguments run
  /// on util::ThreadPool worker threads.
  std::vector<std::string> worker_entry_points{"submit", "parallel_for"};
  /// wallclock-in-sim: directories whose functions must not reach a host
  /// clock read through the call graph (digest-sensitive simulated time).
  std::vector<std::string> simtime_dirs{"core/", "sim/", "routing/"};
  /// wallclock-in-sim: paths whose clock reads are sanctioned (the obs
  /// self-profiler measures host time by design and never feeds digests).
  std::vector<std::string> wallclock_exempt_paths{"obs/"};
  /// hotpath-allocation: roots ("Class::name" or bare name) of the event
  /// dispatch / MAC / channel hot paths (the pooling targets of ROADMAP
  /// item 1). Functions transitively reachable from these must not allocate.
  std::vector<std::string> hotpath_roots{
      "Simulator::step",      "Simulator::run_until",
      "Mac::acquire",         "ChannelModel::lose_frame",
      "Network::deliver_broadcast", "Network::deliver_unicast",
      "Network::send_hello"};
  /// fp-accumulation-order: directories whose floating-point reductions
  /// feed determinism digests — reassociation under PDES partitioning
  /// would silently change the digest, so loop accumulations there must be
  /// index-ordered (classic `for`) or routed through obs aggregation.
  std::vector<std::string> fp_digest_dirs{"core/", "sim/", "routing/",
                                          "scale/"};
  /// sim-state-confinement: types whose instances are simulator-owned
  /// state; shared instances must never be touched from ThreadPool worker
  /// tasks (the PDES partition-safety precondition).
  std::vector<std::string> sim_state_types{"Network", "Node", "Simulator",
                                           "EventQueue"};
  /// sim-state-confinement: methods on Simulator-typed objects that are
  /// safe to call from workers — the dispatch context marshals the effect
  /// onto the event loop.
  std::vector<std::string> sim_dispatch_methods{
      "schedule_in", "schedule_at", "schedule_periodic", "schedule"};
  /// Per-rule severity overrides (default: every rule is an Error).
  std::map<std::string, Severity> severity_overrides;
  /// Rules disabled entirely.
  std::set<std::string> disabled_rules;

  [[nodiscard]] static bool path_in(const std::string& rel_path,
                                    const std::vector<std::string>& prefixes) {
    for (const std::string& p : prefixes) {
      if (rel_path.compare(0, p.size(), p) == 0) return true;
    }
    return false;
  }
};

/// Thread-safe finding collector. Emit is a no-op when the finding's line
/// carries an inline waiver for the rule; waived emissions are counted so
/// reports can show suppression totals.
class Sink {
 public:
  explicit Sink(const AnalyzerConfig& config) : config_(&config) {}

  void emit(const RuleInfo& rule, const FileData& file, std::size_t line,
            std::size_t column, std::string message);

  /// Sorted, deduplicated findings (call after all rules have run).
  [[nodiscard]] std::vector<Finding> take();
  [[nodiscard]] std::size_t waived_count() const { return waived_; }

 private:
  const AnalyzerConfig* config_;
  std::mutex mutex_;
  std::vector<Finding> findings_;
  std::size_t waived_ = 0;
};

class Rule {
 public:
  virtual ~Rule() = default;
  [[nodiscard]] virtual const RuleInfo& info() const = 0;

  /// Per-file pass; may run concurrently with other files.
  virtual void check_file(const FileData& file, Sink& sink) {
    (void)file;
    (void)sink;
  }

  /// Whole-program pass; runs serially after every file was lexed. `files`
  /// is sorted by rel_path.
  virtual void finish(const std::vector<FileData>& files, Sink& sink) {
    (void)files;
    (void)sink;
  }

  /// Whole-program pass over the shared symbol index and call graph
  /// (lint/index.hpp, lint/callgraph.hpp); runs serially after finish().
  /// The analyzer builds the index once — per-file slices in the parallel
  /// phase, assembly and the graph serially — and every rule queries the
  /// same instance.
  virtual void finish_program(const ProgramIndex& index, const CallGraph& graph,
                              Sink& sink) {
    (void)index;
    (void)graph;
    (void)sink;
  }
};

}  // namespace alert::analysis_tools
