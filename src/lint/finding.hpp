#pragma once

/// \file finding.hpp
/// Machine-readable analyzer findings. A Finding is one rule violation at
/// one source location; Severity::Error findings gate the exit status (and
/// CI), Severity::Warning findings are reported but do not fail the run.

#include <cstddef>
#include <string>
#include <tuple>

namespace alert::analysis_tools {

enum class Severity { Warning, Error };

[[nodiscard]] constexpr const char* severity_name(Severity s) {
  return s == Severity::Error ? "error" : "warning";
}

struct Finding {
  std::string rule;
  std::string path;  ///< forward-slash path relative to the scan root
  std::size_t line = 0;
  std::size_t column = 0;
  std::string message;
  Severity severity = Severity::Error;

  /// Ordering keys column last and equality ignores it: a pattern hitting
  /// twice on one line is one finding (the retired regex linter reported at
  /// most one hit per line per pattern; dedup preserves that contract).
  [[nodiscard]] friend bool operator<(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule, a.message, a.column) <
           std::tie(b.path, b.line, b.rule, b.message, b.column);
  }
  [[nodiscard]] friend bool operator==(const Finding& a, const Finding& b) {
    return std::tie(a.path, a.line, a.rule, a.message) ==
           std::tie(b.path, b.line, b.rule, b.message);
  }
};

}  // namespace alert::analysis_tools
