/// \file callgraph.cpp

#include "lint/callgraph.hpp"

#include <algorithm>
#include <deque>
#include <set>

namespace alert::analysis_tools {

namespace {

/// Qualifiers whose calls live outside the scanned program by definition.
bool is_std_qualifier(const std::string& q) {
  static const std::set<std::string> kStd{
      "std", "chrono", "filesystem", "this_thread", "string", "numeric"};
  return kStd.count(q) != 0;
}

/// First path segment ("net/mac.hpp" -> "net"); empty for top-level files.
std::string module_of(const std::string& path) {
  const std::size_t slash = path.find('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Whether a call edge between these modules is realizable under the
/// layering DAG. Method-style calls may run in either include direction
/// (callbacks through interfaces invert the dependency); bare free-function
/// calls only in the caller's own include direction.
bool edge_realizable(const AnalyzerConfig* config, const std::string& from,
                     const std::string& to, bool bare_call) {
  if (config == nullptr || from == to || from.empty() || to.empty())
    return true;
  const auto from_it = config->module_deps.find(from);
  const auto to_it = config->module_deps.find(to);
  if (from_it == config->module_deps.end() ||
      to_it == config->module_deps.end()) {
    return true;  // module outside the DAG — nothing to prune with
  }
  if (from_it->second.count(to) != 0) return true;
  return !bare_call && to_it->second.count(from) != 0;
}

}  // namespace

CallGraph::CallGraph(const ProgramIndex& index, const AnalyzerConfig* config)
    : index_(&index), config_(config) {
  const std::vector<FunctionInfo>& fns = index.functions();
  edges_.resize(fns.size());
  for (std::size_t fi = 0; fi < fns.size(); ++fi) {
    std::set<std::size_t> seen;
    for (const CallSite& call : fns[fi].calls) {
      for (const std::size_t t : resolve(fi, call)) {
        if (seen.insert(t).second) edges_[fi].push_back({t, &call});
      }
    }
  }
}

std::vector<std::size_t> CallGraph::resolve(std::size_t caller,
                                            const CallSite& call) const {
  std::vector<std::size_t> out;
  if (is_std_qualifier(call.qualifier)) return out;
  const std::vector<FunctionInfo>& fns = index_->functions();
  const std::string from_module = module_of(fns[caller].file->rel_path);
  std::string enclosing_class;
  if (const std::size_t sep = fns[caller].qualified.rfind("::");
      sep != std::string::npos) {
    enclosing_class = fns[caller].qualified.substr(0, sep);
  }
  std::vector<std::size_t> bare;  // scratch for unqualified-call resolution
  const std::vector<std::size_t>* targets = nullptr;
  if (call.scope_qualified && !call.qualifier.empty()) {
    targets = &index_->by_qualified(call.qualifier + "::" + call.callee);
    if (targets->empty()) targets = &index_->by_name(call.callee);
  } else if (call.qualifier.empty()) {
    // A bare call follows C++ unqualified lookup: a member of the
    // enclosing class hides everything else; failing that, only free
    // functions are viable — members of unrelated classes cannot be
    // called without an object, so by_name hits on them are collisions.
    targets = enclosing_class.empty()
                  ? nullptr
                  : &index_->by_qualified(enclosing_class + "::" +
                                          call.callee);
    if (targets == nullptr || targets->empty()) {
      bare.clear();
      for (const std::size_t t : index_->by_name(call.callee)) {
        if (fns[t].qualified == fns[t].name) bare.push_back(t);
      }
      targets = &bare;
    }
  } else {
    targets = &index_->by_name(call.callee);
  }
  for (const std::size_t t : *targets) {
    if (t == caller) continue;  // self-edges never change reachability
    if (!edge_realizable(config_, from_module,
                         module_of(fns[t].file->rel_path),
                         call.qualifier.empty())) {
      continue;
    }
    out.push_back(t);
  }
  return out;
}

CallGraph::Reachability CallGraph::reach(
    const std::vector<std::size_t>& roots) const {
  Reachability r;
  r.reached.assign(edges_.size(), 0);
  r.parent.assign(edges_.size(), npos);
  r.parent_call.assign(edges_.size(), nullptr);
  std::deque<std::size_t> queue;
  for (const std::size_t root : roots) {
    if (root < edges_.size() && r.reached[root] == 0) {
      r.reached[root] = 1;
      queue.push_back(root);
    }
  }
  while (!queue.empty()) {
    const std::size_t u = queue.front();
    queue.pop_front();
    for (const Edge& e : edges_[u]) {
      if (r.reached[e.target] != 0) continue;
      r.reached[e.target] = 1;
      r.parent[e.target] = u;
      r.parent_call[e.target] = e.via;
      queue.push_back(e.target);
    }
  }
  return r;
}

CallGraph::ReverseReach CallGraph::reach_reverse(
    const std::vector<std::size_t>& sources) const {
  ReverseReach r;
  r.reached.assign(edges_.size(), 0);
  r.next.assign(edges_.size(), npos);
  r.via.assign(edges_.size(), nullptr);

  // Reverse adjacency, remembering the inducing forward call site.
  struct Rev {
    std::size_t caller;
    const CallSite* via;
  };
  std::vector<std::vector<Rev>> rev(edges_.size());
  for (std::size_t u = 0; u < edges_.size(); ++u) {
    for (const Edge& e : edges_[u]) rev[e.target].push_back({u, e.via});
  }

  std::deque<std::size_t> queue;
  for (const std::size_t s : sources) {
    if (s < edges_.size() && r.reached[s] == 0) {
      r.reached[s] = 1;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    const std::size_t v = queue.front();
    queue.pop_front();
    for (const Rev& in : rev[v]) {
      if (r.reached[in.caller] != 0) continue;
      r.reached[in.caller] = 1;
      r.next[in.caller] = v;
      r.via[in.caller] = in.via;
      queue.push_back(in.caller);
    }
  }
  return r;
}

std::vector<std::size_t> CallGraph::match(const std::string& spec) const {
  if (spec.find("::") != std::string::npos) {
    return index_->by_qualified(spec);
  }
  return index_->by_name(spec);
}

std::string CallGraph::chain(const Reachability& r, std::size_t fn) const {
  std::vector<std::size_t> path{fn};
  while (r.parent[path.back()] != npos) path.push_back(r.parent[path.back()]);
  std::reverse(path.begin(), path.end());
  std::string out;
  for (const std::size_t f : path) {
    if (!out.empty()) out += " -> ";
    out += index_->functions()[f].qualified;
  }
  return out;
}

std::string CallGraph::chain(const ReverseReach& r, std::size_t fn) const {
  std::string out = index_->functions()[fn].qualified;
  for (std::size_t f = r.next[fn]; f != npos; f = r.next[f]) {
    out += " -> " + index_->functions()[f].qualified;
  }
  return out;
}

}  // namespace alert::analysis_tools
