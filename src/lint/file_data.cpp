#include "lint/file_data.hpp"

#include <utility>

#include "lint/lexer.hpp"

namespace alert::analysis_tools {

namespace {

/// Parse `alert-lint: allow(a, b)` out of one comment token's text and
/// record the rules for the comment's line. The syntax is inherited from
/// the retired Python alert-lint so existing waivers keep working.
void parse_waiver(const Token& comment,
                  std::map<std::size_t, std::set<std::string>>* waivers) {
  static constexpr std::string_view kTag = "alert-lint:";
  const std::string& text = comment.text;
  const std::size_t tag = text.find(kTag);
  if (tag == std::string::npos) return;
  std::size_t i = text.find("allow", tag + kTag.size());
  if (i == std::string::npos) return;
  i = text.find('(', i);
  if (i == std::string::npos) return;
  const std::size_t close = text.find(')', i);
  if (close == std::string::npos) return;
  std::set<std::string>& rules = (*waivers)[comment.line];
  std::string cur;
  for (std::size_t j = i + 1; j <= close; ++j) {
    const char c = text[j];
    if (c == ',' || c == ')') {
      if (!cur.empty()) rules.insert(cur);
      cur.clear();
    } else if (c != ' ' && c != '\t') {
      cur.push_back(c);
    }
  }
}

}  // namespace

FileData build_file_data(std::string rel_path, std::string source) {
  FileData f;
  f.rel_path = std::move(rel_path);
  f.source = std::move(source);
  f.tokens = lex(f.source);
  f.code.reserve(f.tokens.size());
  for (std::size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    if (t.kind == TokenKind::Preprocessor) {
      // A trailing comment on a directive line is part of the raw
      // Preprocessor token, so waivers on #include lines live here.
      parse_waiver(t, &f.waivers);
    } else if (is_code(t)) {
      f.code.push_back(i);
    } else if (t.kind == TokenKind::LineComment ||
               t.kind == TokenKind::BlockComment) {
      parse_waiver(t, &f.waivers);
    }
  }
  return f;
}

std::size_t CodeView::matching(std::size_t open_i, std::string_view open,
                               std::string_view close) const {
  std::size_t depth = 0;
  for (std::size_t i = open_i; i < size(); ++i) {
    const std::string& t = tok(i).text;
    if (t == open) {
      ++depth;
    } else if (t == close) {
      if (--depth == 0) return i;
    }
  }
  return size();
}

std::size_t read_member_chain(const CodeView& v, std::size_t i,
                              std::vector<std::string>* out) {
  if (i >= v.size() || v.tok(i).kind != TokenKind::Identifier) return i;
  std::vector<std::string> chain{v.tok(i).text};
  std::size_t j = i + 1;
  while (j + 1 < v.size() &&
         (v.is_punct(j, ".") || v.is_punct(j, "->")) &&
         v.tok(j + 1).kind == TokenKind::Identifier) {
    chain.push_back(v.tok(j).text);
    chain.push_back(v.tok(j + 1).text);
    j += 2;
  }
  out->insert(out->end(), chain.begin(), chain.end());
  return j;
}

}  // namespace alert::analysis_tools
