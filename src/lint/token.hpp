#pragma once

/// \file token.hpp
/// Token model for the alertsim-analyzer lexer. One pass over a C++ source
/// file yields a flat token vector; rules match against it instead of raw
/// text, so comments, string literals and preprocessor lines can never be
/// mistaken for code (the failure mode of the retired regex-based
/// alert-lint).

#include <cstddef>
#include <string>
#include <vector>

namespace alert::analysis_tools {

enum class TokenKind {
  Identifier,    ///< identifiers and keywords (no keyword table needed)
  Number,        ///< pp-number: integers, floats, digit separators, suffixes
  String,        ///< "..." including raw strings and encoding prefixes
  CharLiteral,   ///< '...'
  Punct,         ///< operators/punctuation; multi-char ops are one token
  LineComment,   ///< text excludes the trailing newline
  BlockComment,  ///< text includes the /* */ delimiters
  Preprocessor,  ///< a whole logical directive line (continuations folded)
};

struct Token {
  TokenKind kind = TokenKind::Punct;
  std::string text;
  std::size_t line = 0;    ///< 1-based line of the token's first character
  std::size_t column = 0;  ///< 1-based column of the token's first character
};

/// True for token kinds that are program code (what rules usually match);
/// comments and preprocessor directives are carried for waiver/tag parsing
/// and include analysis respectively.
[[nodiscard]] inline bool is_code(const Token& t) {
  switch (t.kind) {
    case TokenKind::Identifier:
    case TokenKind::Number:
    case TokenKind::String:
    case TokenKind::CharLiteral:
    case TokenKind::Punct:
      return true;
    case TokenKind::LineComment:
    case TokenKind::BlockComment:
    case TokenKind::Preprocessor:
      return false;
  }
  return false;
}

using TokenStream = std::vector<Token>;

}  // namespace alert::analysis_tools
