#include "campaign/engine.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <system_error>
#include <utility>
#include <vector>

#include "campaign/cache.hpp"
#include "campaign/journal.hpp"
#include "core/scenario_codec.hpp"
#include "obs/resource.hpp"
#include "obs/series.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace alert::campaign {

bool write_manifest_atomic(const obs::RunManifest& manifest,
                           const std::string& path) {
  namespace fs = std::filesystem;
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) {
      ALERT_LOG_ERROR("campaign: cannot open '%s' for writing", tmp.c_str());
      return false;
    }
    manifest.write_json(out);
    if (!out.good()) {
      ALERT_LOG_ERROR("campaign: short write to '%s'", tmp.c_str());
      return false;
    }
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    ALERT_LOG_ERROR("campaign: rename '%s' -> '%s' failed: %s", tmp.c_str(),
                    path.c_str(), ec.message().c_str());
    return false;
  }
  return true;
}

UnitGrid expand_units(const CampaignSpec& spec, std::size_t reps_option,
                      bool trace_first) {
  UnitGrid grid;
  grid.reps = reps_option > 0 ? reps_option
                              : core::bench_replications(spec.fallback_reps);
  grid.point_reps.assign(spec.points.size(), 0);
  for (std::size_t p = 0; p < spec.points.size(); ++p) {
    grid.point_reps[p] = spec.points[p].reps_override > 0
                             ? spec.points[p].reps_override
                             : grid.reps;
    for (std::uint64_t r = 0; r < grid.point_reps[p]; ++r) {
      WorkUnit unit;
      unit.point = p;
      unit.rep = r;
      unit.slot = grid.units.size();
      unit.key = core::scenario_unit_key(spec.points[p].config, r);
      unit.traced = p == 0 && r == 0 && trace_first;
      grid.units.push_back(std::move(unit));
    }
  }
  return grid;
}

core::RunResult execute_unit(const CampaignSpec& spec, const WorkUnit& unit,
                             const std::string& trace_out) {
  core::ScenarioConfig cfg = spec.points[unit.point].config;
  cfg.obs.profile = true;
  if (unit.traced) cfg.obs.trace_out = trace_out;
  return core::run_once(cfg, unit.rep);
}

obs::RunManifest assemble_manifest(const CampaignSpec& spec,
                                   const UnitGrid& grid,
                                   std::vector<core::RunResult>&& results,
                                   bool record_peak_rss) {
  // --- fold replications in deterministic point/replication order ---------
  std::vector<PointResult> points(spec.points.size());
  std::size_t slot = 0;
  for (std::size_t p = 0; p < spec.points.size(); ++p) {
    PointResult& pr = points[p];
    pr.index = p;
    pr.spec = &spec.points[p];
    pr.runs.reserve(grid.point_reps[p]);
    for (std::size_t r = 0; r < grid.point_reps[p]; ++r, ++slot) {
      pr.result.add(results[slot]);
      pr.runs.push_back(std::move(results[slot]));
    }
    std::sort(pr.result.trace_digests.begin(),
              pr.result.trace_digests.end());
  }

  // --- assemble the manifest (mirrors bench::Figure) ----------------------
  obs::RunManifest manifest;
  manifest.name = spec.name;
  manifest.title = spec.title;
  manifest.x_label = spec.x_label;
  manifest.y_label = spec.y_label;
  const core::ScenarioConfig defaults = paper_default_scenario();
  manifest.seed = defaults.seed;
  manifest.replications = grid.reps;
  manifest.add_param("node_count", std::to_string(defaults.node_count));
  manifest.add_param("speed_mps", std::to_string(defaults.speed_mps));
  manifest.add_param("radio_range_m",
                     std::to_string(defaults.radio_range_m));
  manifest.add_param("flow_count", std::to_string(defaults.flow_count));
  manifest.add_param("packet_interval_s",
                     std::to_string(defaults.packet_interval_s));
  manifest.add_param("payload_bytes",
                     std::to_string(defaults.payload_bytes));
  manifest.add_param("duration_s", std::to_string(defaults.duration_s));
  manifest.add_param("partitions_h",
                     std::to_string(defaults.alert.partitions_h));
  for (const auto& [key, value] : spec.extra_params) {
    manifest.add_param(key, value);
  }
  for (const PointResult& pr : points) {
    manifest.metrics.merge(pr.result.metrics);
    manifest.profile.merge(pr.result.profile);
    manifest.trace_digests.insert(manifest.trace_digests.end(),
                                  pr.result.trace_digests.begin(),
                                  pr.result.trace_digests.end());
  }

  const ReduceContext ctx{grid.reps};
  if (spec.reduce) {
    spec.reduce(points, ctx, manifest);
  } else {
    default_reduce(spec, points, ctx, manifest);
  }
  // Measurement-only and opt-in: stamped after every unit completed so the
  // peak covers the whole campaign, never recorded into cache entries.
  if (record_peak_rss) manifest.peak_rss_bytes = obs::peak_rss_bytes();
  for (const std::string& note : spec.notes) manifest.notes.push_back(note);
  return manifest;
}

CampaignOutcome run_campaign(const CampaignSpec& spec,
                             const CampaignOptions& options) {
  CampaignOutcome outcome;

  if (options.print) {
    obs::print_figure_banner(spec.banner, paper_defaults_line());
  }

  // --- expand the grid into work units ------------------------------------
  UnitGrid grid = expand_units(spec, options.reps, !options.trace_out.empty());
  outcome.reps = grid.reps;
  outcome.units_total = grid.units.size();

  std::unique_ptr<ResultCache> cache;
  std::unique_ptr<Journal> journal;
  if (options.use_cache && !grid.units.empty()) {
    const std::string root =
        options.cache_dir.empty() ? default_cache_root() : options.cache_dir;
    cache = std::make_unique<ResultCache>(root);
    journal = std::make_unique<Journal>(root + "/journal", spec.name);
  }

  // --- schedule across the pool -------------------------------------------
  // Each unit writes its own pre-sized slot; completion order never matters
  // because aggregation below walks slots in point/replication order.
  std::vector<core::RunResult> results(grid.units.size());
  std::atomic<std::size_t> cache_hits{0};
  std::atomic<std::size_t> executed{0};
  std::atomic<std::size_t> done{0};
  {
    util::ThreadPool pool(options.threads);
    for (const WorkUnit& unit : grid.units) {
      pool.submit([&spec, &options, &results, &cache, &journal, &cache_hits,
                   &executed, &done, &unit, total = grid.units.size()] {
        bool cached = false;
        if (cache != nullptr && !options.force) {
          if (auto hit = cache->load(unit.key)) {
            // Writes are disjoint: `results` is pre-sized and every unit
            // owns exactly one slot, so no two tasks touch the same entry.
            results[unit.slot] =  // alert-lint: allow(lock-discipline)
                std::move(*hit);
            cached = true;
          }
        }
        if (cached && unit.traced) {
          // Re-execute for the trace side effect only; the cached result
          // still feeds the manifest so its bytes stay identical.
          (void)execute_unit(spec, unit, options.trace_out);
        }
        if (!cached) {
          results[unit.slot] = execute_unit(spec, unit, options.trace_out);
          if (cache != nullptr) cache->store(unit.key, results[unit.slot]);
          executed.fetch_add(1);
        } else {
          cache_hits.fetch_add(1);
        }
        if (journal != nullptr) journal->mark_done(unit.key);
        const std::size_t finished = done.fetch_add(1) + 1;
        ALERT_LOG_INFO("campaign %s: unit %zu/%zu %s (point %zu rep %llu)",
                       spec.name.c_str(), finished, total,
                       cached ? "cached" : "ran", unit.point,
                       static_cast<unsigned long long>(unit.rep));
      });
    }
    pool.wait_idle();
  }
  outcome.cache_hits = cache_hits.load();
  outcome.executed = executed.load();
  if (cache != nullptr) outcome.cache_store_errors = cache->store_errors();
  if (journal != nullptr) {
    outcome.journal_write_errors = journal->write_errors();
  }

  outcome.manifest = assemble_manifest(spec, grid, std::move(results),
                                       options.record_peak_rss);
  obs::RunManifest& manifest = outcome.manifest;

  // --- present -------------------------------------------------------------
  if (options.print) {
    if (!manifest.series.empty()) {
      obs::print_series_table(manifest.title, manifest.x_label,
                              manifest.y_label, manifest.series);
    }
    if (!manifest.notes.empty()) obs::print_text_line("");
    for (const std::string& note : manifest.notes) {
      obs::print_text_line(note);
    }
  }
  if (util::log_level() >= util::LogLevel::Info &&
      !manifest.profile.scopes.empty()) {
    std::fputs(manifest.profile.summary().c_str(), stderr);
  }
  ALERT_LOG_INFO("campaign %s: %zu units, %zu cached, %zu executed",
                 spec.name.c_str(), outcome.units_total, outcome.cache_hits,
                 outcome.executed);
  if (outcome.cache_store_errors > 0 || outcome.journal_write_errors > 0) {
    ALERT_LOG_WARN(
        "campaign %s: degraded persistence — %zu cache store errors, %zu "
        "journal write errors (completed units will re-execute on resume)",
        spec.name.c_str(), outcome.cache_store_errors,
        outcome.journal_write_errors);
  }

  obs::MetricsRegistry progress;
  progress.counter("campaign.units.total").inc(outcome.units_total);
  progress.counter("campaign.units.cached").inc(outcome.cache_hits);
  progress.counter("campaign.units.executed").inc(outcome.executed);
  progress.counter("campaign.cache.store_errors")
      .inc(outcome.cache_store_errors);
  progress.counter("campaign.journal.write_errors")
      .inc(outcome.journal_write_errors);
  outcome.progress = progress.snapshot();

  if (!options.metrics_out.empty()) {
    if (!write_manifest_atomic(manifest, options.metrics_out)) {
      outcome.exit_code = 1;
      return outcome;
    }
    if (options.print) {
      obs::print_text_line("manifest: " + options.metrics_out);
    }
  }
  if (!options.trace_out.empty() && options.print) {
    obs::print_text_line("trace: " + options.trace_out);
  }
  return outcome;
}

}  // namespace alert::campaign
