#include "campaign/cache.hpp"

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

#include <unistd.h>

#include "campaign/result_codec.hpp"
#include "util/logging.hpp"

namespace alert::campaign {

namespace fs = std::filesystem;

std::string default_cache_root() {
  if (const char* env = std::getenv("ALERTSIM_CACHE_DIR");
      env != nullptr && env[0] != '\0') {
    return env;
  }
  return ".alertsim-cache";
}

ResultCache::ResultCache(std::string root) : root_(std::move(root)) {}

std::string ResultCache::object_path(const std::string& key) const {
  const std::string shard = key.size() >= 2 ? key.substr(0, 2) : key;
  return (fs::path(root_) / "objects" / shard / (key + ".json")).string();
}

std::optional<core::RunResult> ResultCache::load(
    const std::string& key) const {
  std::ifstream in(object_path(key), std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string error;
  auto run = parse_run_result(buffer.str(), &error);
  if (!run) {
    ALERT_LOG_WARN("cache: corrupt entry %s (%s), treating as miss",
                   key.c_str(), error.c_str());
  }
  return run;
}

bool ResultCache::entry_exists(const std::string& key) const {
  std::error_code ec;
  return fs::exists(object_path(key), ec);
}

void ResultCache::remove(const std::string& key) const {
  std::error_code ec;
  fs::remove(object_path(key), ec);
  if (ec) {
    ALERT_LOG_WARN("cache: cannot remove %s: %s", key.c_str(),
                   ec.message().c_str());
  }
}

bool ResultCache::store(const std::string& key,
                        const core::RunResult& run) const {
  const fs::path final_path(object_path(key));
  std::error_code ec;
  fs::create_directories(final_path.parent_path(), ec);
  if (ec) {
    ALERT_LOG_ERROR("cache: cannot create %s: %s",
                    final_path.parent_path().string().c_str(),
                    ec.message().c_str());
    store_errors_.fetch_add(1);
    return false;
  }
  // Unique temp name in the final directory (rename is atomic within one
  // filesystem); a process-wide counter disambiguates concurrent writers of
  // the same key inside this process.
  // Deliberate process-wide state: the counter only names temp files and
  // never influences results.
  static std::atomic<std::uint64_t> sequence{0};  // alert-lint: allow(mutable-global)
  std::ostringstream tmp_name;
  tmp_name << final_path.filename().string() << ".tmp."
           << static_cast<unsigned long>(::getpid()) << "."
           << sequence.fetch_add(1);
  const fs::path tmp_path = final_path.parent_path() / tmp_name.str();
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) {
      ALERT_LOG_ERROR("cache: cannot open %s for writing",
                      tmp_path.string().c_str());
      store_errors_.fetch_add(1);
      return false;
    }
    write_run_result_json(out, run);
    if (!out.good()) {
      ALERT_LOG_ERROR("cache: short write to %s", tmp_path.string().c_str());
      out.close();
      fs::remove(tmp_path, ec);
      store_errors_.fetch_add(1);
      return false;
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    ALERT_LOG_ERROR("cache: rename %s -> %s failed: %s",
                    tmp_path.string().c_str(), final_path.string().c_str(),
                    ec.message().c_str());
    fs::remove(tmp_path, ec);
    store_errors_.fetch_add(1);
    return false;
  }
  return true;
}

}  // namespace alert::campaign
