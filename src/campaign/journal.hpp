#pragma once

/// \file journal.hpp
/// Append-only journal of work-unit events for one campaign. The result
/// cache (cache.hpp) is the authoritative resume record — a unit is "done"
/// iff its cache entry exists — so the journal is deliberately simple
/// bookkeeping: one flushed line per event lets an interrupted run be
/// audited (how far did it get? which worker touched what?) and lets the
/// smoke tests assert that a resume skipped completed units and that no
/// unit was claimed more than its retry budget allows. A torn final line
/// from a killed process is ignored on reload.
///
/// Multi-process discipline (the distributed queue, src/dist/): every
/// worker opens the same journal in append mode. Appends go through one
/// short, immediately-flushed line per event — on POSIX an O_APPEND write
/// of that size is atomic, so concurrent workers interleave whole lines,
/// never bytes. Each process's in-memory view is the file at open time plus
/// its own appends; readers wanting the converged state reopen.
///
/// Format (text, one record per line):
///   alertsim-campaign-journal/1 <campaign name>
///   done <64-hex-or-40-hex unit key>
///   claimed <key> <worker id>
///   failed <key> <worker id>
///   reclaimed <key> <stale worker id>
///
/// Write failures (disk full, revoked directory) are detected after every
/// flush, logged once, and counted (write_errors()) — the engine surfaces
/// the count as the `campaign.journal.write_errors` obs counter instead of
/// silently losing resume records.

#include <cstddef>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

namespace alert::campaign {

class Journal {
 public:
  /// Opens (creating directories and the file as needed)
  /// `<dir>/<name>.journal` and loads the event history from any previous
  /// run. All mark_* calls are safe from pool workers.
  Journal(const std::string& dir, const std::string& name);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t done_count() const;

  /// Record one completed unit (idempotent) and flush the line.
  void mark_done(const std::string& key);

  /// Record a lease claim by `worker` (one line per claim — retries of the
  /// same key append again; claim_count() is the execution-attempt audit).
  void mark_claimed(const std::string& key, const std::string& worker);

  /// Record a failed execution attempt observed by `worker`.
  void mark_failed(const std::string& key, const std::string& worker);

  /// Record a stale lease broken away from `stale_worker`.
  void mark_reclaimed(const std::string& key, const std::string& stale_worker);

  /// Claims recorded for `key` (this process's view; see header comment).
  [[nodiscard]] std::size_t claim_count(const std::string& key) const;
  /// Highest claim count over all keys (smoke-test bound: never above
  /// 1 + max retries when the retry budget is honoured).
  [[nodiscard]] std::size_t max_claim_count() const;
  /// Claims beyond each key's first — the re-executions the fleet absorbed.
  [[nodiscard]] std::size_t total_retries() const;
  [[nodiscard]] std::size_t failed_count(const std::string& key) const;
  [[nodiscard]] std::size_t total_failed() const;
  [[nodiscard]] std::size_t total_reclaimed() const;
  /// Distinct worker ids seen in claimed records, sorted.
  [[nodiscard]] std::vector<std::string> workers() const;

  /// Lines that failed to reach the file (logged once, then counted).
  [[nodiscard]] std::size_t write_errors() const;

 private:
  void append_line(const std::string& line);  ///< callers hold mutex_

  std::string path_;
  mutable std::mutex mutex_;
  std::set<std::string> done_;
  std::map<std::string, std::size_t> claims_;
  std::map<std::string, std::size_t> failures_;
  std::set<std::string> workers_;
  std::size_t reclaims_ = 0;
  std::size_t write_errors_ = 0;
  bool write_error_logged_ = false;
  std::ofstream out_;
};

}  // namespace alert::campaign
