#pragma once

/// \file journal.hpp
/// Append-only journal of completed work units for one campaign. The result
/// cache (cache.hpp) is the authoritative resume record — a unit is "done"
/// iff its cache entry exists — so the journal is deliberately simple
/// bookkeeping: one flushed "done <key>" line per completed unit lets an
/// interrupted run be audited (how far did it get?) and lets the smoke test
/// assert a resume actually skipped completed units. A torn final line from
/// a killed process is ignored on reload.
///
/// Format (text, one record per line):
///   alertsim-campaign-journal/1 <campaign name>
///   done <64-hex-or-40-hex unit key>
///   ...

#include <cstddef>
#include <fstream>
#include <mutex>
#include <set>
#include <string>

namespace alert::campaign {

class Journal {
 public:
  /// Opens (creating directories and the file as needed)
  /// `<dir>/<name>.journal` and loads the completed-unit set from any
  /// previous run. mark_done() is safe to call from pool workers.
  Journal(const std::string& dir, const std::string& name);

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t done_count() const;

  /// Record one completed unit (idempotent) and flush the line.
  void mark_done(const std::string& key);

 private:
  std::string path_;
  mutable std::mutex mutex_;
  std::set<std::string> done_;
  std::ofstream out_;
};

}  // namespace alert::campaign
