#include "campaign/figure_main.hpp"

#include <cstdio>
#include <string>

#include "campaign/engine.hpp"
#include "campaign/figures.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace alert::campaign {

int figure_main(const char* name, int argc, char** argv) {
  std::string error;
  const auto args = util::CliArgs::parse(argc, argv, &error);
  if (!args) {
    std::fprintf(stderr, "%s: %s\n", name, error.c_str());
    return 2;
  }
  const util::CommonFlags flags = util::CommonFlags::from(*args);

  CampaignOptions options;
  options.cache_dir = args->get("cache-dir", std::string());
  options.use_cache = !args->get("no-cache", false);
  options.force = args->get("force", false);
  options.record_peak_rss = args->get("peak-rss", false);

  for (const auto& key : args->unused()) {
    std::fprintf(stderr, "%s: unknown flag --%s\n", name, key.c_str());
    return 2;
  }
  if (const auto level = util::parse_log_level(flags.log_level)) {
    util::set_log_level(*level);
  } else {
    std::fprintf(stderr, "%s: bad --log-level=%s\n", name,
                 flags.log_level.c_str());
    return 2;
  }
  if (flags.reps < 0) {
    std::fprintf(stderr, "%s: --reps must be >= 0\n", name);
    return 2;
  }
  if (flags.threads < 0) {
    std::fprintf(stderr, "%s: --threads must be >= 0\n", name);
    return 2;
  }

  const FigureDef* def = find_figure(name);
  if (def == nullptr) {
    std::fprintf(stderr, "%s: not in the campaign figure registry\n", name);
    return 2;
  }

  options.reps = static_cast<std::size_t>(flags.reps);
  options.threads = static_cast<std::size_t>(flags.threads);
  options.trace_out = flags.trace_out;
  options.metrics_out = flags.metrics_out;

  const CampaignSpec spec = def->build();
  return run_campaign(spec, options).exit_code;
}

}  // namespace alert::campaign
