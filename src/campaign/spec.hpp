#pragma once

/// \file spec.hpp
/// Declarative campaign specifications: a CampaignSpec names one figure (or
/// ad-hoc sweep) as a list of fully-resolved experiment points plus a
/// reduction that turns the aggregated point results into the figure's
/// series and notes. Specs come from two places:
///
///   * the built-in figure registry (figures.hpp) — every paper figure is a
///     builder function returning a CampaignSpec whose reducer reproduces
///     the bench's exact series/table/notes;
///   * JSON files (schema "alertsim-campaign-spec/1") — a base config, a
///     set of curves (param overrides) and an x-axis sweep, expanded
///     curve-major into points and reduced through a named y-metric
///     extractor.
///
/// The spec layer is pure description: no execution, no I/O beyond
/// load_spec_file. The engine (engine.hpp) schedules the points' work units,
/// consults the result cache, folds replications in deterministic order and
/// hands the PointResults to the reducer.

#include <cstddef>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"
#include "obs/manifest.hpp"
#include "util/stats.hpp"

namespace alert::campaign {

/// The paper's default setup (Sec. 5.2): 1000x1000 m, 200 nodes, 2 m/s,
/// 250 m range, 10 flows, 512 B CBR every 2 s, 100 s, H = 5, seed 0xA1E47.
[[nodiscard]] core::ScenarioConfig paper_default_scenario();

/// The "# defaults: ..." banner line describing paper_default_scenario().
[[nodiscard]] const char* paper_defaults_line();

/// One experiment point: a fully-resolved scenario plus its identity on the
/// figure (which curve it belongs to, its x value).
struct PointSpec {
  std::string curve;  ///< series this point feeds (default reducer grouping)
  double x = 0.0;
  core::ScenarioConfig config;
  std::size_t reps_override = 0;  ///< 0 = campaign-level replication count
};

/// The aggregated outcome of one point after all replications completed
/// (from the cache or executed live).
struct PointResult {
  std::size_t index = 0;            ///< position in CampaignSpec::points
  const PointSpec* spec = nullptr;  ///< borrowed from the spec
  /// Folded in replication order (deterministic regardless of scheduling);
  /// trace_digests sorted.
  core::ExperimentResult result;
  /// Raw per-replication results in replication order (reducers that need
  /// scalars no accumulator carries, e.g. message counters).
  std::vector<core::RunResult> runs;
};

/// Context the engine passes to reducers (dynamic values that may appear in
/// notes, e.g. "(reps per point: N)").
struct ReduceContext {
  std::size_t reps = 0;  ///< campaign-level replications actually used
};

/// Turns the point results into the figure's series and notes on the
/// manifest (title/labels/params are already set by the engine). When
/// absent, the default reducer groups points by curve name (first-appearance
/// order) and extracts `y_metric` per point.
using Reducer = std::function<void(const std::vector<PointResult>& points,
                                   const ReduceContext& ctx,
                                   obs::RunManifest& manifest)>;

struct CampaignSpec {
  std::string name;     ///< machine id, e.g. "fig14a_latency_vs_nodes"
  std::string banner;   ///< "# ..." line, e.g. "Fig. 14a — latency ..."
  std::string title;    ///< table/manifest title
  std::string x_label;
  std::string y_label;
  std::size_t fallback_reps = 10;  ///< when neither --reps nor ALERTSIM_REPS
  std::string y_metric;            ///< default-reducer extractor name
  std::vector<PointSpec> points;
  Reducer reduce;  ///< nullptr = default reducer over y_metric
  /// Extra manifest params beyond the shared paper defaults.
  std::vector<std::pair<std::string, std::string>> extra_params;
  /// Static notes appended after the reducer's.
  std::vector<std::string> notes;
};

/// Mean/CI extraction of one named y-metric from an aggregated point.
/// Names: delivery_rate, latency_ms, e2e_delay_ms, hops, hops_with_control,
/// participants, route_overlap, rf_per_packet, partitions_per_packet,
/// cover_per_data, energy_per_delivered_j, energy_total_j, energy_crypto_j,
/// energy_max_node_j, timing_source_rate, timing_dest_rate,
/// intersection_success, intersection_identified, intersection_frequency.
using YMetricFn =
    std::function<util::SeriesPoint(double x, const core::ExperimentResult&)>;

[[nodiscard]] std::optional<YMetricFn> y_metric_extractor(
    std::string_view name);
[[nodiscard]] std::vector<std::string> y_metric_names();

/// The default reducer: group points by curve (first-appearance order) into
/// one series each, extracting `y_metric`, and append a
/// "(reps per point: N)" note.
void default_reduce(const CampaignSpec& spec,
                    const std::vector<PointResult>& points,
                    const ReduceContext& ctx, obs::RunManifest& manifest);

inline constexpr const char* kSpecSchema = "alertsim-campaign-spec/1";

/// Parse a JSON campaign spec (schema "alertsim-campaign-spec/1"; see
/// docs/CAMPAIGN.md for the full schema). Returns nullopt and fills
/// `error` on malformed input, unknown params or unknown y_metric.
[[nodiscard]] std::optional<CampaignSpec> load_spec_json(
    std::string_view json, std::string* error = nullptr);

/// Read and parse a spec file.
[[nodiscard]] std::optional<CampaignSpec> load_spec_file(
    const std::string& path, std::string* error = nullptr);

}  // namespace alert::campaign
