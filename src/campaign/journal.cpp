#include "campaign/journal.hpp"

#include <filesystem>
#include <system_error>

#include "util/logging.hpp"

namespace alert::campaign {

namespace {
constexpr const char* kJournalHeader = "alertsim-campaign-journal/1";
}

Journal::Journal(const std::string& dir, const std::string& name) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    ALERT_LOG_ERROR("journal: cannot create %s: %s", dir.c_str(),
                    ec.message().c_str());
  }
  path_ = (fs::path(dir) / (name + ".journal")).string();

  bool existed = false;
  {
    std::ifstream in(path_);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      existed = true;
      if (first) {
        first = false;
        continue;  // header line
      }
      // Only complete, well-formed records count — a torn tail line from a
      // killed process is dropped here and rewritten when the unit reruns.
      if (line.rfind("done ", 0) == 0 && line.size() > 5) {
        done_.insert(line.substr(5));
      }
    }
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    ALERT_LOG_ERROR("journal: cannot open %s for append", path_.c_str());
    return;
  }
  if (!existed) {
    out_ << kJournalHeader << ' ' << name << '\n';
    out_.flush();
  }
}

bool Journal::contains(const std::string& key) const {
  std::lock_guard lk(mutex_);
  return done_.contains(key);
}

std::size_t Journal::done_count() const {
  std::lock_guard lk(mutex_);
  return done_.size();
}

void Journal::mark_done(const std::string& key) {
  std::lock_guard lk(mutex_);
  if (!done_.insert(key).second) return;
  if (!out_) return;
  out_ << "done " << key << '\n';
  out_.flush();
}

}  // namespace alert::campaign
