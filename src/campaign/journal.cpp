#include "campaign/journal.hpp"

#include <algorithm>
#include <filesystem>
#include <sstream>
#include <system_error>

#include "util/logging.hpp"

namespace alert::campaign {

namespace {

constexpr const char* kJournalHeader = "alertsim-campaign-journal/1";

/// Split one record line into whitespace-separated tokens.
std::vector<std::string> tokens_of(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> out;
  std::string token;
  while (in >> token) out.push_back(std::move(token));
  return out;
}

}  // namespace

Journal::Journal(const std::string& dir, const std::string& name) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    ALERT_LOG_ERROR("journal: cannot create %s: %s", dir.c_str(),
                    ec.message().c_str());
  }
  path_ = (fs::path(dir) / (name + ".journal")).string();

  bool existed = false;
  {
    std::ifstream in(path_);
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
      existed = true;
      if (first) {
        first = false;
        continue;  // header line
      }
      // Only complete, well-formed records count — a torn tail line from a
      // killed process is dropped here and rewritten when the unit reruns.
      // (A torn key can also surface as a complete-looking line with a
      // truncated hex key; it matches no real unit, so it is inert.)
      const std::vector<std::string> parts = tokens_of(line);
      if (parts.size() == 2 && parts[0] == "done") {
        done_.insert(parts[1]);
      } else if (parts.size() == 3 && parts[0] == "claimed") {
        ++claims_[parts[1]];
        workers_.insert(parts[2]);
      } else if (parts.size() == 3 && parts[0] == "failed") {
        ++failures_[parts[1]];
      } else if (parts.size() == 3 && parts[0] == "reclaimed") {
        ++reclaims_;
      }
    }
  }
  out_.open(path_, std::ios::app);
  if (!out_) {
    ALERT_LOG_ERROR("journal: cannot open %s for append", path_.c_str());
    write_error_logged_ = true;
    ++write_errors_;
    return;
  }
  if (!existed) {
    std::lock_guard lk(mutex_);
    append_line(std::string(kJournalHeader) + ' ' + name);
  }
}

bool Journal::contains(const std::string& key) const {
  std::lock_guard lk(mutex_);
  return done_.contains(key);
}

std::size_t Journal::done_count() const {
  std::lock_guard lk(mutex_);
  return done_.size();
}

void Journal::append_line(const std::string& line) {
  if (!out_.is_open()) {
    ++write_errors_;
    return;
  }
  // One buffered write + flush per line: the stream buffer is empty between
  // records, so each record reaches the kernel as a single O_APPEND write —
  // concurrent workers interleave whole lines.
  out_ << line << '\n';
  out_.flush();
  if (!out_.good()) {
    ++write_errors_;
    if (!write_error_logged_) {
      // Log once, not per record: a full disk would otherwise flood stderr
      // with one error per completed unit.
      write_error_logged_ = true;
      ALERT_LOG_ERROR(
          "journal: write to %s failed — resume records from here on are "
          "lost (counted in campaign.journal.write_errors)",
          path_.c_str());
    }
    out_.clear();  // keep trying: a transient failure shouldn't wedge it
  }
}

void Journal::mark_done(const std::string& key) {
  std::lock_guard lk(mutex_);
  if (!done_.insert(key).second) return;
  append_line("done " + key);
}

void Journal::mark_claimed(const std::string& key, const std::string& worker) {
  std::lock_guard lk(mutex_);
  ++claims_[key];
  workers_.insert(worker);
  append_line("claimed " + key + ' ' + worker);
}

void Journal::mark_failed(const std::string& key, const std::string& worker) {
  std::lock_guard lk(mutex_);
  ++failures_[key];
  append_line("failed " + key + ' ' + worker);
}

void Journal::mark_reclaimed(const std::string& key,
                             const std::string& stale_worker) {
  std::lock_guard lk(mutex_);
  ++reclaims_;
  append_line("reclaimed " + key + ' ' + stale_worker);
}

std::size_t Journal::claim_count(const std::string& key) const {
  std::lock_guard lk(mutex_);
  const auto it = claims_.find(key);
  return it == claims_.end() ? 0 : it->second;
}

std::size_t Journal::max_claim_count() const {
  std::lock_guard lk(mutex_);
  std::size_t max = 0;
  for (const auto& [key, count] : claims_) max = std::max(max, count);
  return max;
}

std::size_t Journal::total_retries() const {
  std::lock_guard lk(mutex_);
  std::size_t total = 0;
  for (const auto& [key, count] : claims_) {
    if (count > 1) total += count - 1;
  }
  return total;
}

std::size_t Journal::failed_count(const std::string& key) const {
  std::lock_guard lk(mutex_);
  const auto it = failures_.find(key);
  return it == failures_.end() ? 0 : it->second;
}

std::size_t Journal::total_failed() const {
  std::lock_guard lk(mutex_);
  std::size_t total = 0;
  for (const auto& [key, count] : failures_) total += count;
  return total;
}

std::size_t Journal::total_reclaimed() const {
  std::lock_guard lk(mutex_);
  return reclaims_;
}

std::vector<std::string> Journal::workers() const {
  std::lock_guard lk(mutex_);
  return {workers_.begin(), workers_.end()};
}

std::size_t Journal::write_errors() const {
  std::lock_guard lk(mutex_);
  return write_errors_;
}

}  // namespace alert::campaign
