#include "campaign/figures.hpp"

#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>

#include "analysis/theory.hpp"
#include "core/scenario_codec.hpp"
#include "routing/zone.hpp"

namespace alert::campaign {

namespace {

using core::MobilityKind;
using core::ProtocolKind;

core::ScenarioConfig base() { return paper_default_scenario(); }

util::SeriesPoint acc_point(double x, const util::Accumulator& a) {
  return {x, a.mean(), a.ci95_halfwidth()};
}

util::SeriesPoint acc_ms(double x, const util::Accumulator& a) {
  return {x, a.mean() * 1e3, a.ci95_halfwidth() * 1e3};
}

std::string reps_note(std::size_t reps) {
  return "(reps per point: " + std::to_string(reps) + ")";
}

__attribute__((format(printf, 1, 2))) std::string format(const char* fmt,
                                                         ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  return buf;
}

PointSpec make_point(std::string curve, double x, core::ScenarioConfig cfg,
                     std::size_t reps_override = 0) {
  PointSpec p;
  p.curve = std::move(curve);
  p.x = x;
  p.config = std::move(cfg);
  p.reps_override = reps_override;
  return p;
}

/// Group points into one series per curve (first-appearance order).
std::vector<util::Series> group_by_curve(
    const std::vector<PointResult>& points,
    const std::function<util::SeriesPoint(const PointResult&)>& fn) {
  std::vector<util::Series> series;
  for (const PointResult& pr : points) {
    util::Series* target = nullptr;
    for (util::Series& s : series) {
      if (s.name == pr.spec->curve) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      series.push_back(util::Series{pr.spec->curve, {}});
      target = &series.back();
    }
    // False positive: appends to a Series member, not the loop container.
    target->points.push_back(fn(pr));  // alert-lint: allow(iterator-invalidation)
  }
  return series;
}

// --- Sec. 4 analysis figures (no simulation points) ------------------------

CampaignSpec fig07a() {
  CampaignSpec s;
  s.name = "fig07a_possible_nodes";
  s.banner = "Fig. 7a — estimated possible participating nodes (Eq. 7)";
  s.title = "Fig. 7a — possible participating nodes";
  s.x_label = "partitions H";
  s.y_label = "expected nodes N_e";
  s.reduce = [](const std::vector<PointResult>&, const ReduceContext&,
                obs::RunManifest& m) {
    for (const double n : {100.0, 200.0, 400.0}) {
      util::Series series{std::to_string(static_cast<int>(n)) + " nodes",
                          {}};
      const analysis::NetworkShape net{1000.0, 1000.0, n};
      for (int H = 1; H <= 7; ++H) {
        series.points.push_back(
            {static_cast<double>(H),
             analysis::expected_possible_nodes(net, H), 0.0});
      }
      m.series.push_back(std::move(series));
    }
  };
  return s;
}

CampaignSpec fig07b() {
  CampaignSpec s;
  s.name = "fig07b_random_forwarders";
  s.banner = "Fig. 7b — estimated random forwarders (Eq. 10)";
  s.title = "Fig. 7b — expected random forwarders";
  s.x_label = "partitions H";
  s.y_label = "E[N_RF]";
  s.reduce = [](const std::vector<PointResult>&, const ReduceContext&,
                obs::RunManifest& m) {
    util::Series series{"E[N_RF]", {}};
    for (int H = 1; H <= 10; ++H) {
      series.points.push_back(
          {static_cast<double>(H), analysis::expected_rfs(H), 0.0});
    }
    m.series.push_back(std::move(series));
    m.notes.push_back("successive differences (linearity evidence):");
    for (int H = 2; H <= 10; ++H) {
      m.notes.push_back(format(
          "  H=%d -> %d: %+0.4f", H - 1, H,
          analysis::expected_rfs(H) - analysis::expected_rfs(H - 1)));
    }
  };
  return s;
}

CampaignSpec fig09a() {
  CampaignSpec s;
  s.name = "fig09a_remaining_analytical";
  s.banner = "Fig. 9a — analytical remaining nodes vs time (Eq. 15)";
  s.title =
      "Fig. 9a — remaining nodes in destination zone (v = 2 m/s, H = 5)";
  s.x_label = "time (s)";
  s.y_label = "N_r(t)";
  s.reduce = [](const std::vector<PointResult>&, const ReduceContext&,
                obs::RunManifest& m) {
    for (const double n : {100.0, 200.0, 400.0}) {
      util::Series series{
          std::to_string(static_cast<int>(n)) + " nodes/km^2", {}};
      const analysis::NetworkShape net{1000.0, 1000.0, n};
      for (double t = 0.0; t <= 40.0; t += 5.0) {
        series.points.push_back(
            {t, analysis::remaining_nodes(net, 5, 2.0, t), 0.0});
      }
      m.series.push_back(std::move(series));
    }
  };
  return s;
}

CampaignSpec fig09b() {
  CampaignSpec s;
  s.name = "fig09b_remaining_speed";
  s.banner = "Fig. 9b — analytical remaining nodes vs time by speed";
  s.title = "Fig. 9b — remaining nodes in destination zone (200 nodes, H = 5)";
  s.x_label = "time (s)";
  s.y_label = "N_r(t)";
  s.reduce = [](const std::vector<PointResult>&, const ReduceContext&,
                obs::RunManifest& m) {
    const analysis::NetworkShape net{1000.0, 1000.0, 200.0};
    for (const double v : {1.0, 2.0, 4.0}) {
      util::Series series{std::to_string(static_cast<int>(v)) + " m/s", {}};
      for (double t = 0.0; t <= 40.0; t += 5.0) {
        series.points.push_back(
            {t, analysis::remaining_nodes(net, 5, v, t), 0.0});
      }
      m.series.push_back(std::move(series));
    }
    const double side = analysis::side_a(5, 1000.0);
    m.notes.push_back(format(
        "zone side a(5) = %.1f m; residence constants beta:", side));
    for (const double v : {1.0, 2.0, 4.0}) {
      m.notes.push_back(format("  v=%.0f m/s: beta = %.1f s", v,
                               analysis::beta_square_zone(side, v)));
    }
  };
  return s;
}

// --- Sec. 5 simulation figures ---------------------------------------------

CampaignSpec fig10a() {
  CampaignSpec s;
  s.name = "fig10a_participating_vs_packets";
  s.banner = "Fig. 10a — cumulative participating nodes vs packets";
  s.title = "Fig. 10a — cumulative actual participating nodes per flow";
  s.x_label = "packets";
  s.y_label = "distinct nodes";
  for (const std::size_t n : {100u, 200u}) {
    for (const ProtocolKind proto :
         {ProtocolKind::Alert, ProtocolKind::Gpsr}) {
      core::ScenarioConfig cfg = base();
      cfg.node_count = n;
      cfg.protocol = proto;
      cfg.packets_per_flow = 20;
      s.points.push_back(make_point(std::string(core::protocol_name(proto)) +
                                        " " + std::to_string(n) + "n",
                                    static_cast<double>(n), std::move(cfg)));
    }
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    for (const PointResult& pr : points) {
      util::Series series{pr.spec->curve, {}};
      const auto& cumulative = pr.result.cumulative_participants;
      for (std::size_t p = 0; p < cumulative.size() && p < 20; ++p) {
        series.points.push_back(
            acc_point(static_cast<double>(p + 1), cumulative[p]));
      }
      m.series.push_back(std::move(series));
    }
    m.notes.push_back("(reps per point: " + std::to_string(ctx.reps) +
                      "; ALARM/AO2P track the GPSR curve)");
  };
  return s;
}

CampaignSpec fig10b() {
  CampaignSpec s;
  s.name = "fig10b_participating_vs_size";
  s.banner = "Fig. 10b — participating nodes after 20 packets vs N";
  s.title = "Fig. 10b — actual participating nodes per flow (20 packets)";
  s.x_label = "total nodes";
  s.y_label = "distinct nodes";
  s.y_metric = "participants";
  for (const ProtocolKind proto :
       {ProtocolKind::Alert, ProtocolKind::Gpsr, ProtocolKind::Alarm,
        ProtocolKind::Ao2p}) {
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = base();
      cfg.node_count = n;
      cfg.protocol = proto;
      cfg.packets_per_flow = 20;
      s.points.push_back(make_point(core::protocol_name(proto),
                                    static_cast<double>(n), std::move(cfg)));
    }
  }
  return s;
}

CampaignSpec fig11() {
  CampaignSpec s;
  s.name = "fig11_rf_vs_partitions";
  s.banner = "Fig. 11 — random forwarders per packet vs partitions";
  s.title = "Fig. 11 — random forwarders per packet";
  s.x_label = "partitions H";
  s.y_label = "RFs/packet";
  for (int H = 1; H <= 7; ++H) {
    core::ScenarioConfig cfg = base();
    cfg.alert.partitions_h = H;
    cfg.packets_per_flow = 20;
    s.points.push_back(make_point("ALERT (simulated)",
                                  static_cast<double>(H), std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    util::Series sim{"ALERT (simulated)", {}};
    util::Series theory{"Eq. 10 (analysis)", {}};
    for (const PointResult& pr : points) {
      sim.points.push_back(acc_point(pr.spec->x, pr.result.rf_per_packet));
      theory.points.push_back(
          {pr.spec->x,
           analysis::expected_rfs(static_cast<int>(pr.spec->x)), 0.0});
    }
    m.series.push_back(std::move(sim));
    m.series.push_back(std::move(theory));
    m.notes.push_back("(reps per point: " + std::to_string(ctx.reps) +
                      "; simulated counts sit above the");
    m.notes.push_back(
        " idealized analysis because voids en route also create RFs)");
  };
  return s;
}

CampaignSpec fig12() {
  CampaignSpec s;
  s.name = "fig12_destination_anonymity";
  s.banner = "Fig. 12 — simulated destination-zone residency";
  s.title =
      "Fig. 12 — remaining nodes in destination zone (H = 5, v = 2 m/s)";
  s.x_label = "time (s)";
  s.y_label = "remaining nodes";
  for (const std::size_t n : {100u, 150u, 200u}) {
    core::ScenarioConfig cfg = base();
    cfg.node_count = n;
    cfg.duration_s = 45.0;
    cfg.residency_sample_period_s = 5.0;
    s.points.push_back(make_point(std::to_string(n) + " nodes",
                                  static_cast<double>(n), std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    for (const PointResult& pr : points) {
      util::Series series{pr.spec->curve, {}};
      const double period = pr.spec->config.residency_sample_period_s;
      for (std::size_t i = 0; i < pr.result.remaining_by_sample.size();
           ++i) {
        series.points.push_back(acc_point(static_cast<double>(i) * period,
                                          pr.result.remaining_by_sample[i]));
      }
      m.series.push_back(std::move(series));
    }
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec fig13a() {
  CampaignSpec s;
  s.name = "fig13a_speed_partitions";
  s.banner = "Fig. 13a — residency vs speed and partitions";
  s.title = "Fig. 13a — remaining nodes: partitions x speed (200 nodes)";
  s.x_label = "time (s)";
  s.y_label = "remaining nodes";
  for (const int H : {4, 5}) {
    for (const double v : {0.0, 2.0, 4.0}) {
      core::ScenarioConfig cfg = base();
      cfg.alert.partitions_h = H;
      cfg.speed_mps = v;
      if (v == 0.0) cfg.mobility = MobilityKind::Static;
      cfg.duration_s = 45.0;
      cfg.residency_sample_period_s = 5.0;
      s.points.push_back(make_point(
          "H=" + std::to_string(H) + " v=" +
              std::to_string(static_cast<int>(v)),
          v, std::move(cfg)));
    }
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    for (const PointResult& pr : points) {
      util::Series series{pr.spec->curve, {}};
      const double period = pr.spec->config.residency_sample_period_s;
      for (std::size_t i = 0; i < pr.result.remaining_by_sample.size();
           ++i) {
        series.points.push_back(acc_point(static_cast<double>(i) * period,
                                          pr.result.remaining_by_sample[i]));
      }
      m.series.push_back(std::move(series));
    }
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec fig13b() {
  CampaignSpec s;
  s.name = "fig13b_density_vs_speed";
  s.banner = "Fig. 13b — required density vs speed for fixed k";
  s.title =
      "Fig. 13b — density required for k = 6 remaining after 10 s (H = 5)";
  s.x_label = "speed (m/s)";
  s.y_label = "nodes";
  const analysis::NetworkShape shape{1000.0, 1000.0, 200.0};
  for (double v = 2.0; v <= 8.0; v += 2.0) {
    const double needed =
        analysis::required_node_count(shape, 5, v, 10.0, 6.0);
    core::ScenarioConfig cfg = base();
    cfg.node_count = static_cast<std::size_t>(needed + 0.5);
    cfg.speed_mps = v;
    cfg.duration_s = cfg.traffic_start_s + 10.0 + 1.0;
    cfg.residency_sample_period_s = 10.0;
    s.points.push_back(
        make_point("remaining at that density (simulated)", v,
                   std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    const analysis::NetworkShape net{1000.0, 1000.0, 200.0};
    util::Series predicted{"required nodes (Eq. 15 inverse)", {}};
    util::Series validated{"remaining at that density (simulated)", {}};
    for (const PointResult& pr : points) {
      predicted.points.push_back(
          {pr.spec->x,
           analysis::required_node_count(net, 5, pr.spec->x, 10.0, 6.0),
           0.0});
      const auto& samples = pr.result.remaining_by_sample;
      if (samples.empty()) continue;
      // Sample index 1 is t = +10 s after session start.
      const util::Accumulator& acc =
          samples.size() > 1 ? samples[1] : samples[0];
      validated.points.push_back(acc_point(pr.spec->x, acc));
    }
    m.series.push_back(std::move(predicted));
    m.series.push_back(std::move(validated));
    m.notes.push_back("(reps per point: " + std::to_string(ctx.reps) +
                      "; validated column should sit near k = 6)");
  };
  return s;
}

CampaignSpec fig14a() {
  CampaignSpec s;
  s.name = "fig14a_latency_vs_nodes";
  s.banner = "Fig. 14a — latency per packet vs number of nodes";
  s.title = "Fig. 14a — latency per packet";
  s.x_label = "total nodes";
  s.y_label = "latency (ms)";
  s.y_metric = "latency_ms";
  for (const ProtocolKind proto :
       {ProtocolKind::Alert, ProtocolKind::Gpsr, ProtocolKind::Alarm,
        ProtocolKind::Ao2p}) {
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = base();
      cfg.node_count = n;
      cfg.protocol = proto;
      s.points.push_back(
          make_point(std::string(core::protocol_name(proto)) + " (ms)",
                     static_cast<double>(n), std::move(cfg)));
    }
  }
  return s;
}

struct UpdateVariant {
  ProtocolKind proto;
  bool update;
  const char* name;
};

constexpr UpdateVariant kSixVariants[] = {
    {ProtocolKind::Alert, true, "ALERT w/ update"},
    {ProtocolKind::Alert, false, "ALERT w/o update"},
    {ProtocolKind::Gpsr, true, "GPSR w/ update"},
    {ProtocolKind::Gpsr, false, "GPSR w/o update"},
    {ProtocolKind::Alarm, true, "ALARM"},
    {ProtocolKind::Ao2p, true, "AO2P"},
};

CampaignSpec fig14b() {
  CampaignSpec s;
  s.name = "fig14b_latency_vs_speed";
  s.banner = "Fig. 14b — latency per packet vs node speed";
  s.title = "Fig. 14b — latency per packet vs speed";
  s.x_label = "speed (m/s)";
  s.y_label = "latency (ms)";
  s.y_metric = "latency_ms";
  for (const UpdateVariant& v : kSixVariants) {
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = base();
      cfg.protocol = v.proto;
      cfg.speed_mps = speed;
      cfg.destination_update = v.update;
      s.points.push_back(make_point(std::string(v.name) + " (ms)", speed,
                                    std::move(cfg)));
    }
  }
  return s;
}

CampaignSpec fig15a() {
  CampaignSpec s;
  s.name = "fig15a_hops_vs_nodes";
  s.banner = "Fig. 15a — hops per packet vs number of nodes";
  s.title = "Fig. 15a — hops per packet";
  s.x_label = "total nodes";
  s.y_label = "hops";
  for (const ProtocolKind proto :
       {ProtocolKind::Alert, ProtocolKind::Gpsr, ProtocolKind::Alarm,
        ProtocolKind::Ao2p}) {
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = base();
      cfg.node_count = n;
      cfg.protocol = proto;
      s.points.push_back(make_point(core::protocol_name(proto),
                                    static_cast<double>(n), std::move(cfg)));
    }
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    std::vector<util::Series> series =
        group_by_curve(points, [](const PointResult& pr) {
          return acc_point(pr.spec->x, pr.result.hops);
        });
    util::Series alarm_diss{"ALARM (incl. dissemination)", {}};
    for (const PointResult& pr : points) {
      if (pr.spec->curve == "ALARM") {
        alarm_diss.points.push_back(
            acc_point(pr.spec->x, pr.result.hops_with_control));
      }
    }
    series.push_back(  // alert-lint: allow(iterator-invalidation)
        std::move(alarm_diss));
    for (util::Series& sr : series) m.series.push_back(std::move(sr));
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec fig15b() {
  CampaignSpec s;
  s.name = "fig15b_hops_vs_speed";
  s.banner = "Fig. 15b — hops per packet vs node speed";
  s.title = "Fig. 15b — hops per packet vs speed";
  s.x_label = "speed (m/s)";
  s.y_label = "hops";
  for (const UpdateVariant& v : kSixVariants) {
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = base();
      cfg.protocol = v.proto;
      cfg.speed_mps = speed;
      cfg.destination_update = v.update;
      s.points.push_back(make_point(v.name, speed, std::move(cfg)));
    }
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    std::vector<util::Series> series =
        group_by_curve(points, [](const PointResult& pr) {
          return acc_point(pr.spec->x, pr.result.hops);
        });
    util::Series alarm_diss{"ALARM (incl. dissemination)", {}};
    for (const PointResult& pr : points) {
      if (pr.spec->curve == "ALARM") {
        alarm_diss.points.push_back(
            acc_point(pr.spec->x, pr.result.hops_with_control));
      }
    }
    series.push_back(  // alert-lint: allow(iterator-invalidation)
        std::move(alarm_diss));
    for (util::Series& sr : series) m.series.push_back(std::move(sr));
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec fig16a() {
  CampaignSpec s;
  s.name = "fig16a_delivery_vs_nodes";
  s.banner = "Fig. 16a — delivery rate vs number of nodes";
  s.title = "Fig. 16a — delivery rate (with dest. update)";
  s.x_label = "total nodes";
  s.y_label = "delivery rate";
  s.y_metric = "delivery_rate";
  for (const ProtocolKind proto :
       {ProtocolKind::Alert, ProtocolKind::Gpsr, ProtocolKind::Alarm,
        ProtocolKind::Ao2p}) {
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = base();
      cfg.node_count = n;
      cfg.protocol = proto;
      s.points.push_back(make_point(core::protocol_name(proto),
                                    static_cast<double>(n), std::move(cfg)));
    }
  }
  return s;
}

CampaignSpec fig16b() {
  CampaignSpec s;
  s.name = "fig16b_delivery_vs_speed";
  s.banner = "Fig. 16b — delivery rate vs node speed";
  s.title = "Fig. 16b — delivery rate vs speed";
  s.x_label = "speed (m/s)";
  s.y_label = "delivery rate";
  s.y_metric = "delivery_rate";
  const UpdateVariant variants[] = {
      {ProtocolKind::Alert, true, "ALERT w/ update"},
      {ProtocolKind::Alert, false, "ALERT w/o update"},
      {ProtocolKind::Gpsr, true, "GPSR w/ update"},
      {ProtocolKind::Gpsr, false, "GPSR w/o update"},
  };
  for (const UpdateVariant& v : variants) {
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = base();
      cfg.protocol = v.proto;
      cfg.speed_mps = speed;
      cfg.destination_update = v.update;
      s.points.push_back(make_point(v.name, speed, std::move(cfg)));
    }
  }
  return s;
}

CampaignSpec fig17() {
  CampaignSpec s;
  s.name = "fig17_movement_models";
  s.banner = "Fig. 17 — ALERT delay under different movement models";
  s.title = "Fig. 17 — ALERT delay by movement model";
  s.x_label = "speed (m/s)";
  s.y_label = "end-to-end delay (ms)";
  struct Model {
    MobilityKind kind;
    std::size_t groups;
    double range;
    const char* name;
  };
  const Model models[] = {
      {MobilityKind::RandomWaypoint, 0, 0.0, "random waypoint"},
      {MobilityKind::Group, 10, 150.0, "group (10 x 150 m)"},
      {MobilityKind::Group, 5, 200.0, "group (5 x 200 m)"},
  };
  for (const Model& model : models) {
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = base();
      cfg.mobility = model.kind;
      cfg.group_count = model.groups == 0 ? 1 : model.groups;
      cfg.group_range_m = model.range;
      cfg.speed_mps = speed;
      // Distance-matched pairs and long retransmitting sessions — see the
      // design discussion in bench/fig17 history and EXPERIMENTS.md.
      cfg.min_pair_distance_m = 300.0;
      cfg.max_pair_distance_m = 700.0;
      cfg.alert.max_retransmissions = 4;
      s.points.push_back(make_point(std::string(model.name) + " (ms)",
                                    speed, std::move(cfg)));
    }
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    std::vector<util::Series> series =
        group_by_curve(points, [](const PointResult& pr) {
          return acc_ms(pr.spec->x, pr.result.e2e_delay_s);
        });
    for (util::Series& sr : series) m.series.push_back(std::move(sr));
    m.notes.push_back("mean delivery rates per model/speed (context for the");
    m.notes.push_back("survivorship discussion in EXPERIMENTS.md):");
    std::string current_curve;
    std::string line;
    for (const PointResult& pr : points) {
      if (pr.spec->curve != current_curve) {
        if (!line.empty()) m.notes.push_back(line);
        current_curve = pr.spec->curve;
        std::string label = current_curve;
        if (const auto pos = label.rfind(" (ms)");
            pos != std::string::npos) {
          label.erase(pos);
        }
        line = "  " + label + ":";
      }
      line += format(" %.2f", pr.result.delivery_rate.mean());
    }
    if (!line.empty()) m.notes.push_back(line);
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec table1() {
  CampaignSpec s;
  s.name = "table1_anonymity_matrix";
  s.banner = "Table 1 — measured anonymity property matrix";
  s.title = "Table 1 — measured anonymity property matrix";
  s.fallback_reps = 5;
  for (const ProtocolKind proto :
       {ProtocolKind::Alert, ProtocolKind::Gpsr, ProtocolKind::Alarm,
        ProtocolKind::Ao2p, ProtocolKind::Zap}) {
    core::ScenarioConfig cfg = base();
    cfg.protocol = proto;
    cfg.run_attacks = true;
    if (proto == ProtocolKind::Alert) {
      // The full defence: notify-and-go plus the intersection
      // countermeasure (both on only for this figure).
      cfg.alert.intersection_countermeasure = true;
    }
    s.points.push_back(make_point(core::protocol_name(proto), 0.0,
                                  std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    m.notes.push_back(format("%-8s  %-12s  %-12s  %-12s  %-12s  %s", "proto",
                             "src(timing)", "dst(timing)", "dst(inter.)",
                             "route-ovl", "verdict"));
    for (const PointResult& pr : points) {
      const double src = pr.result.timing_source_rate.mean();
      const double dst_timing = pr.result.timing_dest_rate.mean();
      const double dst_inter = pr.result.intersection_success.mean();
      const double overlap = pr.result.route_overlap.mean();
      // A destination is exposed if *either* attack pins it: the baselines
      // deliver by unicast (timing identifies the terminal receiver); ALERT
      // is attacked through its zone broadcasts (intersection, Sec. 3.3).
      const bool src_anon = src < 0.3;
      const bool dst_anon = std::max(dst_timing, dst_inter) < 0.3;
      const bool route_anon = overlap < 0.5;
      m.notes.push_back(format(
          "%-8s  %-12.2f  %-12.2f  %-12.2f  %-12.2f  src:%s dst:%s route:%s",
          pr.spec->curve.c_str(), src, dst_timing, dst_inter, overlap,
          src_anon ? "yes" : "NO", dst_anon ? "yes" : "NO",
          route_anon ? "yes" : "NO"));
    }
    m.notes.push_back(
        "Paper's Table 1 expectation: ALERT protects source, destination");
    m.notes.push_back(
        "and route; the greedy geographic baselines expose the route and at");
    m.notes.push_back(
        "least one endpoint. Caveat recorded in EXPERIMENTS.md: a frequency-");
    m.notes.push_back(
        "ranking intersection variant (not considered by the paper) still");
    m.notes.push_back(
        "degrades ALERT's destination anonymity over very long sessions.");
    m.notes.push_back("(reps per row: " + std::to_string(ctx.reps) + ")");
  };
  return s;
}

// --- Ablations and back-of-envelope sections -------------------------------

CampaignSpec ablation_intersection() {
  CampaignSpec s;
  s.name = "ablation_intersection";
  s.banner = "Sec. 3.3 ablation — intersection attack vs countermeasure";
  s.title = "Sec. 3.3 — intersection attack success vs session length";
  s.x_label = "session (s)";
  s.y_label = "attack success";
  for (const bool countermeasure : {false, true}) {
    for (const double duration : {20.0, 40.0, 60.0, 100.0}) {
      core::ScenarioConfig cfg = base();
      cfg.duration_s = duration;
      cfg.run_attacks = true;
      cfg.alert.intersection_countermeasure = countermeasure;
      s.points.push_back(make_point(countermeasure ? "ON" : "OFF", duration,
                                    std::move(cfg)));
    }
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    for (const char* cm : {"OFF", "ON"}) {
      util::Series freq{std::string("freq-attack success, cm ") + cm, {}};
      util::Series strict{
          std::string("strict-intersection P(D), cm ") + cm, {}};
      for (const PointResult& pr : points) {
        if (pr.spec->curve != cm) continue;
        freq.points.push_back(
            acc_point(pr.spec->x, pr.result.intersection_frequency));
        strict.points.push_back(
            acc_point(pr.spec->x, pr.result.intersection_success));
      }
      m.series.push_back(std::move(freq));
      m.series.push_back(std::move(strict));
    }
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec ablation_h_tradeoff() {
  CampaignSpec s;
  s.name = "ablation_h_tradeoff";
  s.banner = "H/k tradeoff — anonymity vs cost as H grows";
  s.title = "H/k tradeoff (200 nodes)";
  s.x_label = "partitions H";
  s.y_label = "see column names";
  for (int H = 2; H <= 7; ++H) {
    core::ScenarioConfig cfg = base();
    cfg.alert.partitions_h = H;
    s.points.push_back(
        make_point("ALERT", static_cast<double>(H), std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    util::Series rfs{"RFs/packet (route anon.)", {}};
    util::Series zone_pop{"zone population k (dest anon.)", {}};
    util::Series hops{"hops/packet (cost)", {}};
    util::Series latency{"latency ms (cost)", {}};
    for (const PointResult& pr : points) {
      rfs.points.push_back(acc_point(pr.spec->x, pr.result.rf_per_packet));
      hops.points.push_back(acc_point(pr.spec->x, pr.result.hops));
      latency.points.push_back(acc_ms(pr.spec->x, pr.result.latency_s));
      zone_pop.points.push_back(
          {pr.spec->x,
           routing::expected_zone_population(
               200.0, static_cast<int>(pr.spec->x)),
           0.0});
    }
    m.series.push_back(std::move(rfs));
    m.series.push_back(std::move(zone_pop));
    m.series.push_back(std::move(hops));
    m.series.push_back(std::move(latency));
    m.notes.push_back(
        "Reading: route anonymity (RFs) buys linearly with H while the");
    m.notes.push_back(
        "destination's k-anonymity halves per step — the paper's argument");
    m.notes.push_back(
        "for choosing H so that k stays a 'reasonable number' (H=5 at 200");
    m.notes.push_back("nodes -> k ~ 6). " + reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec ablation_notify_and_go() {
  CampaignSpec s;
  s.name = "ablation_notify_and_go";
  s.banner = "Sec. 2.6 ablation — notify-and-go window sweep";
  s.title = "notify-and-go: anonymity vs latency";
  s.x_label = "t0 (ms)";
  s.y_label = "see column names";
  // t0 = 0 disables the mechanism entirely (the paper's baseline).
  for (const double t0_ms : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    core::ScenarioConfig cfg = base();
    cfg.run_attacks = true;
    if (t0_ms == 0.0) {
      cfg.alert.notify_and_go = false;
    } else {
      cfg.alert.notify_t0_s = t0_ms * 1e-3;
    }
    s.points.push_back(make_point("ALERT", t0_ms, std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    util::Series attack{"timing src-id rate", {}};
    util::Series latency{"latency (ms)", {}};
    util::Series covers{"cover pkts per data", {}};
    for (const PointResult& pr : points) {
      attack.points.push_back(
          acc_point(pr.spec->x, pr.result.timing_source_rate));
      latency.points.push_back(acc_ms(pr.spec->x, pr.result.latency_s));
      covers.points.push_back(
          acc_point(pr.spec->x, pr.result.cover_per_data));
    }
    m.series.push_back(std::move(attack));
    m.series.push_back(std::move(latency));
    m.series.push_back(std::move(covers));
    m.notes.push_back("(reps per point: " + std::to_string(ctx.reps) +
                      "; t0 = 0 row is the mechanism disabled)");
  };
  return s;
}

CampaignSpec ablation_pseudonym_period() {
  CampaignSpec s;
  s.name = "ablation_pseudonym_period";
  s.banner = "Sec. 2.2 ablation — pseudonym rotation period sweep";
  s.title = "pseudonym rotation: routing health vs linkability window";
  s.x_label = "rotation period (s)";
  s.y_label = "see column names";
  for (const double period : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    core::ScenarioConfig cfg = base();
    cfg.pseudonym_period_s = period;
    s.points.push_back(make_point("ALERT", period, std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    util::Series delivery{"delivery rate", {}};
    util::Series latency{"latency (ms)", {}};
    for (const PointResult& pr : points) {
      delivery.points.push_back(
          acc_point(pr.spec->x, pr.result.delivery_rate));
      latency.points.push_back(acc_ms(pr.spec->x, pr.result.latency_s));
    }
    m.series.push_back(std::move(delivery));
    m.series.push_back(std::move(latency));
    m.notes.push_back(
        "Short periods perturb routing (stale neighbour entries point at");
    m.notes.push_back(
        "expired pseudonyms); long periods hand the adversary a long");
    m.notes.push_back("linkability window. " + reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec energy_per_packet() {
  CampaignSpec s;
  s.name = "energy_per_packet";
  s.banner = "Energy — energy per delivered packet by protocol";
  s.title = "energy accounting (x: 0=ALERT 1=GPSR 2=ALARM 3=AO2P)";
  s.x_label = "protocol idx";
  s.y_label = "see column names";
  double x = 0.0;
  for (const ProtocolKind proto :
       {ProtocolKind::Alert, ProtocolKind::Gpsr, ProtocolKind::Alarm,
        ProtocolKind::Ao2p}) {
    core::ScenarioConfig cfg = base();
    cfg.protocol = proto;
    s.points.push_back(make_point(core::protocol_name(proto), x,
                                  std::move(cfg)));
    x += 1.0;
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    util::Series per_pkt{"J per delivered packet", {}};
    util::Series crypto_share{"crypto share of total J", {}};
    util::Series hotspot{"max single-node J", {}};
    for (const PointResult& pr : points) {
      per_pkt.points.push_back(
          acc_point(pr.spec->x, pr.result.energy_per_delivered_j));
      const double share =
          pr.result.energy_total_j.mean() > 0.0
              ? pr.result.energy_crypto_j.mean() /
                    pr.result.energy_total_j.mean()
              : 0.0;
      crypto_share.points.push_back({pr.spec->x, share, 0.0});
      hotspot.points.push_back(
          acc_point(pr.spec->x, pr.result.energy_max_node_j));
    }
    m.series.push_back(std::move(per_pkt));
    m.series.push_back(std::move(crypto_share));
    m.series.push_back(std::move(hotspot));
    m.notes.push_back("Expected shape: ALERT's energy/packet a modest factor");
    m.notes.push_back("above GPSR (longer routes, covers, one symmetric op) "
                      "and");
    m.notes.push_back(
        "far below ALARM/AO2P, whose totals are crypto-dominated.");
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

CampaignSpec sec43_location_overhead() {
  CampaignSpec s;
  s.name = "sec43_location_overhead";
  s.banner = "Sec. 4.3 — location service overhead ratio";
  s.title =
      "overhead ratio (N = 200 nodes, regular traffic F = 0.5 Hz/node)";
  s.x_label = "location servers N_L";
  s.y_label = "(N_L(N_L-1)f + Nf) / (N F)";
  // One measured single-replication run at the default deployment.
  s.points.push_back(make_point("measured", 0.0, base(),
                                /*reps_override=*/1));
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext&, obs::RunManifest& m) {
    for (const double f : {0.2, 1.0, 5.0}) {
      util::Series series{
          "update freq f=" + std::to_string(f).substr(0, 3) + " Hz", {}};
      for (const double nl : {5.0, 10.0, 14.0, 20.0, 40.0}) {
        series.points.push_back(
            {nl, analysis::location_overhead_ratio(200.0, nl, f, 0.5), 0.0});
      }
      m.series.push_back(std::move(series));
    }
    m.notes.push_back(format(
        "sqrt(N) = %.1f servers — the paper's sizing rule; ratios",
        std::sqrt(200.0)));
    m.notes.push_back("must be << 1 for the service to be affordable.");
    if (!points.empty() && !points[0].runs.empty()) {
      const core::RunResult& run = points[0].runs[0];
      m.notes.push_back("measured (one 100 s run, 14 servers, f = 1 Hz):");
      m.notes.push_back(format(
          "  location update messages: %llu",
          static_cast<unsigned long long>(run.location_update_messages)));
      m.notes.push_back(
          format("  hello beacons:            %llu",
                 static_cast<unsigned long long>(run.hello_messages)));
      m.notes.push_back(format("  data packets sent:        %llu",
                               static_cast<unsigned long long>(run.sent)));
    }
  };
  return s;
}

CampaignSpec sec31_interception() {
  CampaignSpec s;
  s.name = "sec31_interception";
  s.banner = "Sec. 3.1 — flow blockage under node compromise";
  s.title = "Sec. 3.1 — interception under node compromise (200 nodes)";
  s.x_label = "budget c";
  s.y_label = "fraction";
  s.fallback_reps = 5;
  for (const ProtocolKind proto :
       {ProtocolKind::Alert, ProtocolKind::Gpsr}) {
    core::ScenarioConfig cfg = base();
    cfg.protocol = proto;
    cfg.packets_per_flow = 40;
    cfg.compromise_budgets = {1, 2, 4, 8, 16};
    s.points.push_back(make_point(core::protocol_name(proto), 0.0,
                                  std::move(cfg)));
  }
  s.reduce = [](const std::vector<PointResult>& points,
                const ReduceContext& ctx, obs::RunManifest& m) {
    for (const PointResult& pr : points) {
      util::Series targeted{
          pr.spec->curve + " targeted next-pkt interception", {}};
      util::Series blocked{pr.spec->curve + " random-c full-flow blockage",
                           {}};
      const auto& budgets = pr.spec->config.compromise_budgets;
      for (std::size_t i = 0; i < budgets.size(); ++i) {
        const auto x = static_cast<double>(budgets[i]);
        if (i < pr.result.compromise_targeted.size()) {
          targeted.points.push_back(
              acc_point(x, pr.result.compromise_targeted[i]));
        }
        if (i < pr.result.compromise_blocked.size()) {
          blocked.points.push_back(
              acc_point(x, pr.result.compromise_blocked[i]));
        }
      }
      m.series.push_back(std::move(targeted));
      m.series.push_back(std::move(blocked));
    }
    m.notes.push_back(
        "targeted: adversary compromises c relays of the packet it just");
    m.notes.push_back(
        "observed and waits for the next one — GPSR's repeated route hands");
    m.notes.push_back(
        "it over, ALERT's re-randomized route does not (Sec. 3.1).");
    m.notes.push_back(reps_note(ctx.reps));
  };
  return s;
}

// --- Fault-injection ablations (docs/FAULTS.md robustness study) -----------

/// Shared scaffolding for the two fault ablations: scaled-down deployment
/// (100 nodes, 60 s — these are this repo's own robustness curves, not paper
/// figures, and they run under ASan in the fault-smoke CI job), ALERT and
/// GPSR each with and without link-layer ARQ, and a reducer emitting one
/// delivery-rate series plus one latency series per curve.
core::ScenarioConfig fault_base(ProtocolKind proto, bool arq) {
  core::ScenarioConfig cfg = base();
  cfg.node_count = 100;
  cfg.duration_s = 60.0;
  cfg.protocol = proto;
  cfg.mac.arq.enabled = arq;
  return cfg;
}

std::string fault_curve(ProtocolKind proto, bool arq) {
  return std::string(core::protocol_name(proto)) +
         (arq ? " (ARQ)" : " (no ARQ)");
}

void fault_reduce(const std::vector<PointResult>& points,
                  const ReduceContext& ctx, obs::RunManifest& m) {
  std::vector<util::Series> delivery =
      group_by_curve(points, [](const PointResult& pr) {
        return acc_point(pr.spec->x, pr.result.delivery_rate);
      });
  for (util::Series& sr : delivery) m.series.push_back(std::move(sr));
  std::vector<util::Series> latency =
      group_by_curve(points, [](const PointResult& pr) {
        return acc_ms(pr.spec->x, pr.result.latency_s);
      });
  for (util::Series& sr : latency) {
    sr.name += " latency (ms)";
    m.series.push_back(std::move(sr));
  }
  m.notes.push_back(
      "ARQ: stop-and-wait, retry_limit 4, binary-exponential backoff;");
  m.notes.push_back(
      "latency counts only delivered packets, so ARQ trades delay for");
  m.notes.push_back("delivery under faults (see docs/FAULTS.md).");
  m.notes.push_back(reps_note(ctx.reps));
}

CampaignSpec ablation_loss_arq() {
  CampaignSpec s;
  s.name = "ablation_loss_arq";
  s.banner = "Ablation — delivery vs channel loss rate, ARQ on/off";
  s.title = "ablation — delivery under i.i.d. frame loss (100 nodes, 60 s)";
  s.x_label = "per-frame loss probability";
  s.y_label = "delivery rate";
  s.fallback_reps = 5;
  for (const bool arq : {false, true}) {
    for (const ProtocolKind proto :
         {ProtocolKind::Alert, ProtocolKind::Gpsr}) {
      for (const double p : {0.0, 0.05, 0.1, 0.2, 0.3}) {
        core::ScenarioConfig cfg = fault_base(proto, arq);
        cfg.faults.loss.iid = p;
        s.points.push_back(
            make_point(fault_curve(proto, arq), p, std::move(cfg)));
      }
    }
  }
  s.reduce = fault_reduce;
  return s;
}

CampaignSpec ablation_churn_arq() {
  CampaignSpec s;
  s.name = "ablation_churn_arq";
  s.banner = "Ablation — delivery vs node churn MTTF, ARQ on/off";
  s.title = "ablation — delivery under node churn (MTTR 10 s, 100 nodes)";
  s.x_label = "mean time to failure (s)";
  s.y_label = "delivery rate";
  s.fallback_reps = 5;
  for (const bool arq : {false, true}) {
    for (const ProtocolKind proto :
         {ProtocolKind::Alert, ProtocolKind::Gpsr}) {
      for (const double mttf : {10.0, 20.0, 40.0, 80.0, 160.0}) {
        core::ScenarioConfig cfg = fault_base(proto, arq);
        cfg.faults.churn.mttf_s = mttf;
        cfg.faults.churn.mttr_s = 10.0;
        s.points.push_back(
            make_point(fault_curve(proto, arq), mttf, std::move(cfg)));
      }
    }
  }
  s.reduce = fault_reduce;
  return s;
}

}  // namespace

const std::vector<FigureDef>& figure_registry() {
  static const std::vector<FigureDef> registry = {
      {"fig07a_possible_nodes", fig07a},
      {"fig07b_random_forwarders", fig07b},
      {"fig09a_remaining_analytical", fig09a},
      {"fig09b_remaining_speed", fig09b},
      {"fig10a_participating_vs_packets", fig10a},
      {"fig10b_participating_vs_size", fig10b},
      {"fig11_rf_vs_partitions", fig11},
      {"fig12_destination_anonymity", fig12},
      {"fig13a_speed_partitions", fig13a},
      {"fig13b_density_vs_speed", fig13b},
      {"fig14a_latency_vs_nodes", fig14a},
      {"fig14b_latency_vs_speed", fig14b},
      {"fig15a_hops_vs_nodes", fig15a},
      {"fig15b_hops_vs_speed", fig15b},
      {"fig16a_delivery_vs_nodes", fig16a},
      {"fig16b_delivery_vs_speed", fig16b},
      {"fig17_movement_models", fig17},
      {"table1_anonymity_matrix", table1},
      {"ablation_intersection", ablation_intersection},
      {"ablation_h_tradeoff", ablation_h_tradeoff},
      {"ablation_notify_and_go", ablation_notify_and_go},
      {"ablation_pseudonym_period", ablation_pseudonym_period},
      {"ablation_loss_arq", ablation_loss_arq},
      {"ablation_churn_arq", ablation_churn_arq},
      {"energy_per_packet", energy_per_packet},
      {"sec43_location_overhead", sec43_location_overhead},
      {"sec31_interception", sec31_interception},
  };
  return registry;
}

const FigureDef* find_figure(std::string_view name) {
  for (const FigureDef& def : figure_registry()) {
    if (name == def.name) return &def;
  }
  return nullptr;
}

}  // namespace alert::campaign
