#pragma once

/// \file result_codec.hpp
/// Exact JSON serialization of one replication's RunResult for the
/// content-addressed result cache (schema "alertsim-result-cache/1").
///
/// The codec must round-trip *bit-for-bit*: a campaign resumed from cache
/// has to emit a byte-identical run manifest to the cold run that populated
/// it. Doubles are therefore printed at %.17g (JsonWriter) and parsed back
/// with strtod (an exact inverse), 64-bit counters keep their raw number
/// tokens through the reader (obs/json_value.hpp), and accumulators are
/// stored as their complete Welford state (util::Accumulator::State) rather
/// than derived statistics.

#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "core/experiment.hpp"

namespace alert::campaign {

inline constexpr const char* kResultCacheSchema = "alertsim-result-cache/1";

void write_run_result_json(std::ostream& out, const core::RunResult& run);
[[nodiscard]] std::string run_result_to_json(const core::RunResult& run);

/// Parse a cached entry. Returns nullopt (and fills `error`) on malformed
/// JSON or a schema mismatch — callers treat both as a cache miss.
[[nodiscard]] std::optional<core::RunResult> parse_run_result(
    std::string_view json, std::string* error = nullptr);

}  // namespace alert::campaign
