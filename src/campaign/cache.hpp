#pragma once

/// \file cache.hpp
/// Content-addressed on-disk result cache. One entry stores one
/// replication's RunResult (result_codec.hpp), keyed by
/// core::scenario_unit_key — the SHA-1 of (canonical scenario, replication
/// index, simulation epoch). Layout, sharded on the first key byte to keep
/// directories small:
///
///   <root>/objects/<key[0:2]>/<key>.json
///
/// Writes go to a unique temp file in the final directory and are renamed
/// into place, so concurrent writers and killed processes can never leave a
/// torn entry under the final name; a corrupt or unparsable entry is
/// treated as a miss and overwritten by the next store. The cache is the
/// authoritative record for crash-safe resume (the per-campaign journal is
/// bookkeeping on top; see journal.hpp).

#include <optional>
#include <string>

#include "core/experiment.hpp"

namespace alert::campaign {

/// $ALERTSIM_CACHE_DIR when set and non-empty, else ".alertsim-cache".
[[nodiscard]] std::string default_cache_root();

class ResultCache {
 public:
  explicit ResultCache(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] std::string object_path(const std::string& key) const;

  /// Load the entry for `key`; nullopt on miss *or* on a corrupt entry.
  [[nodiscard]] std::optional<core::RunResult> load(
      const std::string& key) const;

  /// Atomically store (temp file + rename). Returns false and logs on I/O
  /// failure — the campaign still completes, it just cannot resume free.
  bool store(const std::string& key, const core::RunResult& run) const;

 private:
  std::string root_;
};

}  // namespace alert::campaign
