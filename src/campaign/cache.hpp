#pragma once

/// \file cache.hpp
/// Content-addressed on-disk result cache. One entry stores one
/// replication's RunResult (result_codec.hpp), keyed by
/// core::scenario_unit_key — the SHA-1 of (canonical scenario, replication
/// index, simulation epoch). Layout, sharded on the first key byte to keep
/// directories small:
///
///   <root>/objects/<key[0:2]>/<key>.json
///
/// Writes go to a unique temp file in the final directory and are renamed
/// into place, so concurrent writers and killed processes can never leave a
/// torn entry under the final name; a corrupt or unparsable entry is
/// treated as a miss and overwritten by the next store. The cache is the
/// authoritative record for crash-safe resume (the per-campaign journal is
/// bookkeeping on top; see journal.hpp).

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "core/experiment.hpp"

namespace alert::campaign {

/// $ALERTSIM_CACHE_DIR when set and non-empty, else ".alertsim-cache".
[[nodiscard]] std::string default_cache_root();

class ResultCache {
 public:
  explicit ResultCache(std::string root);

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] std::string object_path(const std::string& key) const;

  /// Load the entry for `key`; nullopt on miss *or* on a corrupt entry.
  [[nodiscard]] std::optional<core::RunResult> load(
      const std::string& key) const;

  /// Atomically store (temp file + rename). Returns false and logs on I/O
  /// failure — the campaign still completes, it just cannot resume free.
  /// Failures are also counted (store_errors()) so a sweep silently degraded
  /// to cache-less execution is visible in the campaign summary
  /// (`campaign.cache.store_errors`).
  bool store(const std::string& key, const core::RunResult& run) const;

  /// Entry present under the final name? Cheaper than load() — used by the
  /// distributed queue's claim scans, where parsing every entry per poll
  /// would dominate. A present-but-corrupt entry still reads as done here;
  /// the dist aggregator heals that case by deleting the entry (see
  /// docs/DIST.md failure matrix).
  [[nodiscard]] bool entry_exists(const std::string& key) const;

  /// Remove the entry under the final name (corrupt-entry healing).
  void remove(const std::string& key) const;

  /// store() calls that failed over this cache's lifetime (thread-safe).
  [[nodiscard]] std::size_t store_errors() const {
    return store_errors_.load();
  }

 private:
  std::string root_;
  /// mutable: store() is logically const (the cache is write-through state
  /// on disk); the counter is observability, not cache content.
  mutable std::atomic<std::size_t> store_errors_{0};
};

}  // namespace alert::campaign
