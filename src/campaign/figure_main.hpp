#pragma once

/// \file figure_main.hpp
/// Shared main() body for the figure bench binaries: each fig*_ binary is a
/// one-liner `return alert::campaign::figure_main("<name>", argc, argv);`
/// that looks its spec up in the built-in registry and runs it through the
/// campaign engine. CLI surface and output match the old bench::Figure
/// runner, plus the campaign flags:
///
///   --cache-dir=DIR   result-cache root (default $ALERTSIM_CACHE_DIR or
///                     .alertsim-cache)
///   --no-cache        run every unit live, touch no cache state
///   --force           execute even on cache hit, refreshing the entry
///   --peak-rss        stamp obs::peak_rss_bytes() onto the manifest

namespace alert::campaign {

/// Returns the process exit code: 2 on CLI errors (unknown flag, bad
/// --log-level, unknown figure), the engine's exit code otherwise.
int figure_main(const char* name, int argc, char** argv);

}  // namespace alert::campaign
