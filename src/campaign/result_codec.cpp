#include "campaign/result_codec.hpp"

#include <sstream>
#include <utility>
#include <vector>

#include "obs/json.hpp"
#include "obs/json_value.hpp"

namespace alert::campaign {

namespace {

void write_acc_state(obs::JsonWriter& w, const util::Accumulator& acc) {
  const util::Accumulator::State s = acc.state();
  w.begin_array();
  w.value(static_cast<std::uint64_t>(s.n));
  w.value(s.mean);
  w.value(s.m2);
  w.value(s.min);
  w.value(s.max);
  w.end_array();
}

void write_double_array(obs::JsonWriter& w, const std::vector<double>& v) {
  w.begin_array();
  for (const double x : v) w.value(x);
  w.end_array();
}

bool parse_acc_state(const obs::JsonValue* v, util::Accumulator* out) {
  if (v == nullptr || !v->is_array() || v->size() != 5) return false;
  util::Accumulator::State s;
  s.n = static_cast<std::size_t>(v->at(0).as_u64());
  s.mean = v->at(1).as_double();
  s.m2 = v->at(2).as_double();
  s.min = v->at(3).as_double();
  s.max = v->at(4).as_double();
  *out = util::Accumulator::from_state(s);
  return true;
}

bool parse_double_array(const obs::JsonValue* v, std::vector<double>* out) {
  if (v == nullptr || !v->is_array()) return false;
  out->clear();
  out->reserve(v->size());
  for (const obs::JsonValue& x : v->array()) out->push_back(x.as_double());
  return true;
}

bool parse_metric_kind(std::string_view name, obs::MetricKind* out) {
  for (const obs::MetricKind kind :
       {obs::MetricKind::Counter, obs::MetricKind::Gauge,
        obs::MetricKind::Sample, obs::MetricKind::Histogram}) {
    if (name == obs::metric_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

void write_run_result_json(std::ostream& out, const core::RunResult& run) {
  obs::JsonWriter w(out);
  w.begin_object();
  w.field("schema", kResultCacheSchema);
  w.field("sent", run.sent);
  w.field("delivered", run.delivered);
  w.field("mean_latency_s", run.mean_latency_s);
  w.field("mean_e2e_delay_s", run.mean_e2e_delay_s);
  w.field("mean_hops", run.mean_hops);
  w.field("mean_participants", run.mean_participants);
  w.field("mean_route_overlap", run.mean_route_overlap);
  w.field("rf_per_packet", run.rf_per_packet);
  w.field("partitions_per_packet", run.partitions_per_packet);
  w.field("control_hops_per_packet", run.control_hops_per_packet);
  w.key("cumulative_participants");
  write_double_array(w, run.cumulative_participants);
  w.key("remaining_by_sample");
  write_double_array(w, run.remaining_by_sample);
  w.field("cover_packets_per_data", run.cover_packets_per_data);
  w.field("timing_source_rate", run.timing_source_rate);
  w.field("timing_dest_rate", run.timing_dest_rate);
  w.field("intersection_success", run.intersection_success);
  w.field("intersection_identified", run.intersection_identified);
  w.field("intersection_frequency", run.intersection_frequency);
  w.key("compromise_targeted");
  write_double_array(w, run.compromise_targeted);
  w.key("compromise_blocked");
  write_double_array(w, run.compromise_blocked);
  w.field("location_update_messages", run.location_update_messages);
  w.field("hello_messages", run.hello_messages);
  w.field("energy_total_j", run.energy_total_j);
  w.field("energy_crypto_j", run.energy_crypto_j);
  w.field("energy_per_delivered_j", run.energy_per_delivered_j);
  w.field("energy_max_node_j", run.energy_max_node_j);
  w.field("trace_digest", run.trace_digest);
  w.field("events_executed", run.events_executed);
  w.field("packets_opened", run.packets_opened);
  w.field("packets_expired", run.packets_expired);

  w.key("metrics");
  w.begin_object();
  w.field("replications",
          static_cast<std::uint64_t>(run.metrics.replications));
  w.key("values");
  w.begin_array();
  for (const obs::MetricValue& m : run.metrics.metrics) {
    w.begin_object();
    w.field("name", m.name);
    w.field("kind", obs::metric_kind_name(m.kind));
    w.field("total", m.total);
    w.key("per_rep");
    write_acc_state(w, m.per_rep);
    w.key("samples");
    write_acc_state(w, m.samples);
    w.field("lo", m.lo);
    w.field("hi", m.hi);
    w.key("bins");
    w.begin_array();
    for (const std::uint64_t b : m.bins) w.value(b);
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();

  w.key("profile");
  w.begin_array();
  for (const obs::ScopeStats& s : run.profile.scopes) {
    w.begin_object();
    w.field("name", s.name);
    w.field("count", s.count);
    w.field("total_ns", s.total_ns);
    w.field("max_ns", s.max_ns);
    w.end_object();
  }
  w.end_array();

  w.end_object();
  out << '\n';
}

std::string run_result_to_json(const core::RunResult& run) {
  std::ostringstream out;
  write_run_result_json(out, run);
  return out.str();
}

std::optional<core::RunResult> parse_run_result(std::string_view json,
                                                std::string* error) {
  const auto doc = obs::parse_json(json, error);
  if (!doc) return std::nullopt;
  const auto fail = [error](const char* message)
      -> std::optional<core::RunResult> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };
  if (!doc->is_object()) return fail("cache entry must be an object");
  const obs::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->as_string() != kResultCacheSchema) {
    return fail("cache entry schema mismatch");
  }

  core::RunResult run;
  const auto u64 = [&doc](const char* key) {
    const obs::JsonValue* v = doc->find(key);
    return v != nullptr ? v->as_u64() : 0;
  };
  const auto dbl = [&doc](const char* key) {
    const obs::JsonValue* v = doc->find(key);
    return v != nullptr ? v->as_double() : 0.0;
  };
  run.sent = u64("sent");
  run.delivered = u64("delivered");
  run.mean_latency_s = dbl("mean_latency_s");
  run.mean_e2e_delay_s = dbl("mean_e2e_delay_s");
  run.mean_hops = dbl("mean_hops");
  run.mean_participants = dbl("mean_participants");
  run.mean_route_overlap = dbl("mean_route_overlap");
  run.rf_per_packet = dbl("rf_per_packet");
  run.partitions_per_packet = dbl("partitions_per_packet");
  run.control_hops_per_packet = dbl("control_hops_per_packet");
  if (!parse_double_array(doc->find("cumulative_participants"),
                          &run.cumulative_participants) ||
      !parse_double_array(doc->find("remaining_by_sample"),
                          &run.remaining_by_sample) ||
      !parse_double_array(doc->find("compromise_targeted"),
                          &run.compromise_targeted) ||
      !parse_double_array(doc->find("compromise_blocked"),
                          &run.compromise_blocked)) {
    return fail("cache entry missing a per-packet/per-budget array");
  }
  run.cover_packets_per_data = dbl("cover_packets_per_data");
  run.timing_source_rate = dbl("timing_source_rate");
  run.timing_dest_rate = dbl("timing_dest_rate");
  run.intersection_success = dbl("intersection_success");
  run.intersection_identified = dbl("intersection_identified");
  run.intersection_frequency = dbl("intersection_frequency");
  run.location_update_messages = u64("location_update_messages");
  run.hello_messages = u64("hello_messages");
  run.energy_total_j = dbl("energy_total_j");
  run.energy_crypto_j = dbl("energy_crypto_j");
  run.energy_per_delivered_j = dbl("energy_per_delivered_j");
  run.energy_max_node_j = dbl("energy_max_node_j");
  run.trace_digest = u64("trace_digest");
  run.events_executed = u64("events_executed");
  run.packets_opened = u64("packets_opened");
  run.packets_expired = u64("packets_expired");

  const obs::JsonValue* metrics = doc->find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return fail("cache entry missing metrics");
  }
  if (const obs::JsonValue* v = metrics->find("replications"); v != nullptr) {
    run.metrics.replications = static_cast<std::size_t>(v->as_u64());
  }
  const obs::JsonValue* values = metrics->find("values");
  if (values == nullptr || !values->is_array()) {
    return fail("cache entry missing metrics.values");
  }
  for (const obs::JsonValue& mv : values->array()) {
    if (!mv.is_object()) return fail("metric entry must be an object");
    obs::MetricValue m;
    if (const obs::JsonValue* v = mv.find("name")) m.name = v->as_string();
    const obs::JsonValue* kind = mv.find("kind");
    if (kind == nullptr || !parse_metric_kind(kind->as_string(), &m.kind)) {
      return fail("metric entry has an unknown kind");
    }
    if (const obs::JsonValue* v = mv.find("total")) m.total = v->as_u64();
    if (!parse_acc_state(mv.find("per_rep"), &m.per_rep) ||
        !parse_acc_state(mv.find("samples"), &m.samples)) {
      return fail("metric entry missing accumulator state");
    }
    if (const obs::JsonValue* v = mv.find("lo")) m.lo = v->as_double();
    if (const obs::JsonValue* v = mv.find("hi")) m.hi = v->as_double();
    const obs::JsonValue* bins = mv.find("bins");
    if (bins == nullptr || !bins->is_array()) {
      return fail("metric entry missing bins");
    }
    m.bins.reserve(bins->size());
    for (const obs::JsonValue& b : bins->array()) {
      m.bins.push_back(b.as_u64());
    }
    run.metrics.metrics.push_back(std::move(m));
  }

  const obs::JsonValue* profile = doc->find("profile");
  if (profile == nullptr || !profile->is_array()) {
    return fail("cache entry missing profile");
  }
  for (const obs::JsonValue& sv : profile->array()) {
    if (!sv.is_object()) return fail("profile scope must be an object");
    obs::ScopeStats s;
    if (const obs::JsonValue* v = sv.find("name")) s.name = v->as_string();
    if (const obs::JsonValue* v = sv.find("count")) s.count = v->as_u64();
    if (const obs::JsonValue* v = sv.find("total_ns")) {
      s.total_ns = v->as_u64();
    }
    if (const obs::JsonValue* v = sv.find("max_ns")) s.max_ns = v->as_u64();
    run.profile.scopes.push_back(std::move(s));
  }
  return run;
}

}  // namespace alert::campaign
