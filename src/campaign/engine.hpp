#pragma once

/// \file engine.hpp
/// The campaign engine: expands a CampaignSpec into (point, replication)
/// work units, schedules them across util::ThreadPool, serves completed
/// units from the content-addressed result cache, folds replications in
/// deterministic point/replication order and assembles the same
/// "alertsim-run-manifest/1" document the figure benches emit.
///
/// Determinism contract: given the same spec and replication count, the
/// emitted manifest is byte-identical whether every unit executed live, was
/// served from cache, or any mixture — scheduling order never leaks into
/// the output. Cached units replay their recorded wall-clock self-profile,
/// so even the profile section reproduces. This is what makes interrupt +
/// resume equivalent to an uninterrupted run (the campaign smoke test's
/// assertion), and what makes the distributed fan-out (src/dist/) converge
/// to the same bytes no matter how many workers died along the way.
///
/// The unit pipeline is exposed piecewise — expand_units / execute_unit /
/// assemble_manifest — so the dist worker loop and aggregator run exactly
/// the engine's expansion, execution, and fold; run_campaign is the
/// single-process composition of the three.
///
/// Per-unit progress is reported through alert::obs counters
/// (campaign.units.*, exposed on CampaignOutcome::progress) and
/// ALERT_LOG_INFO lines; neither feeds the manifest.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/spec.hpp"
#include "core/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace alert::campaign {

struct CampaignOptions {
  /// Replications per point; 0 = ALERTSIM_REPS / spec.fallback_reps (the
  /// same resolution the benches use).
  std::size_t reps = 0;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Cache root; empty = default_cache_root(). Ignored when !use_cache.
  std::string cache_dir;
  bool use_cache = true;
  bool force = false;  ///< execute even on hit, refreshing the entry
  /// Structured trace of the first unit (point 0, replication 0). A cached
  /// first unit is re-executed for the trace side effect only — its cached
  /// result still feeds the manifest, keeping the bytes identical.
  std::string trace_out;
  std::string metrics_out;  ///< manifest path; empty = don't write
  bool print = true;        ///< banner/table/notes to stdout (obs helpers)
  /// Stamp obs::peak_rss_bytes() onto the manifest after the run. Off by
  /// default: peak RSS is host state, so recording it would break the
  /// cold-vs-cached manifest byte-identity contract. Opt in per run
  /// (--peak-rss on the benches/driver; the perf suite always records it).
  bool record_peak_rss = false;
};

struct CampaignOutcome {
  obs::RunManifest manifest;
  std::size_t reps = 0;        ///< resolved replications per point
  std::size_t units_total = 0;
  std::size_t cache_hits = 0;
  std::size_t executed = 0;    ///< live simulations (excludes trace replays)
  /// I/O failures the run survived in degraded mode: cache entries that
  /// could not be stored (those units re-execute next run) and journal
  /// lines that never reached disk. Non-zero means the sweep ran cache-less
  /// in part — surfaced in the driver summary so it is never silent.
  std::size_t cache_store_errors = 0;
  std::size_t journal_write_errors = 0;
  /// campaign.units.{total,cached,executed} counters, plus
  /// campaign.cache.store_errors / campaign.journal.write_errors.
  obs::MetricsSnapshot progress;
  int exit_code = 0;  ///< non-zero when the manifest could not be written
};

[[nodiscard]] CampaignOutcome run_campaign(const CampaignSpec& spec,
                                           const CampaignOptions& options);

// --- the unit pipeline, exposed for the distributed queue (src/dist/) ------

/// One (point, replication) work unit of a campaign.
struct WorkUnit {
  std::size_t point = 0;
  std::uint64_t rep = 0;
  std::size_t slot = 0;  ///< into the flat results array (expansion order)
  std::string key;       ///< core::scenario_unit_key — the cache identity
  bool traced = false;   ///< first unit when a trace sink was requested
};

/// The expanded unit grid of one campaign: every unit in deterministic
/// point-major/replication-minor order, plus the per-point replication
/// counts the fold needs.
struct UnitGrid {
  std::size_t reps = 0;                 ///< resolved campaign-level reps
  std::vector<std::size_t> point_reps;  ///< one entry per spec point
  std::vector<WorkUnit> units;
};

/// Expand the spec's points into work units. `reps_option` as in
/// CampaignOptions::reps; `trace_first` marks unit (0, 0) traced.
[[nodiscard]] UnitGrid expand_units(const CampaignSpec& spec,
                                    std::size_t reps_option,
                                    bool trace_first = false);

/// Execute one unit live (self-profile always on, exactly as the pooled
/// path runs it). `trace_out` attaches the structured trace sink when the
/// unit is traced.
[[nodiscard]] core::RunResult execute_unit(const CampaignSpec& spec,
                                           const WorkUnit& unit,
                                           const std::string& trace_out = {});

/// Fold per-unit results (indexed by WorkUnit::slot) in deterministic
/// point/replication order and assemble the run manifest — params, merged
/// metrics/profile, sorted digests, reducer series, notes. Consumes
/// `results`.
[[nodiscard]] obs::RunManifest assemble_manifest(
    const CampaignSpec& spec, const UnitGrid& grid,
    std::vector<core::RunResult>&& results, bool record_peak_rss = false);

/// Write through a temp file + rename so a process killed mid-write can
/// never leave a torn manifest under the final name. Returns false and
/// logs on failure.
bool write_manifest_atomic(const obs::RunManifest& manifest,
                           const std::string& path);

}  // namespace alert::campaign
