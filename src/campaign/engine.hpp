#pragma once

/// \file engine.hpp
/// The campaign engine: expands a CampaignSpec into (point, replication)
/// work units, schedules them across util::ThreadPool, serves completed
/// units from the content-addressed result cache, folds replications in
/// deterministic point/replication order and assembles the same
/// "alertsim-run-manifest/1" document the figure benches emit.
///
/// Determinism contract: given the same spec and replication count, the
/// emitted manifest is byte-identical whether every unit executed live, was
/// served from cache, or any mixture — scheduling order never leaks into
/// the output. Cached units replay their recorded wall-clock self-profile,
/// so even the profile section reproduces. This is what makes interrupt +
/// resume equivalent to an uninterrupted run (the campaign smoke test's
/// assertion).
///
/// Per-unit progress is reported through alert::obs counters
/// (campaign.units.*, exposed on CampaignOutcome::progress) and
/// ALERT_LOG_INFO lines; neither feeds the manifest.

#include <cstddef>
#include <string>

#include "campaign/spec.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"

namespace alert::campaign {

struct CampaignOptions {
  /// Replications per point; 0 = ALERTSIM_REPS / spec.fallback_reps (the
  /// same resolution the benches use).
  std::size_t reps = 0;
  std::size_t threads = 0;  ///< 0 = hardware concurrency
  /// Cache root; empty = default_cache_root(). Ignored when !use_cache.
  std::string cache_dir;
  bool use_cache = true;
  bool force = false;  ///< execute even on hit, refreshing the entry
  /// Structured trace of the first unit (point 0, replication 0). A cached
  /// first unit is re-executed for the trace side effect only — its cached
  /// result still feeds the manifest, keeping the bytes identical.
  std::string trace_out;
  std::string metrics_out;  ///< manifest path; empty = don't write
  bool print = true;        ///< banner/table/notes to stdout (obs helpers)
  /// Stamp obs::peak_rss_bytes() onto the manifest after the run. Off by
  /// default: peak RSS is host state, so recording it would break the
  /// cold-vs-cached manifest byte-identity contract. Opt in per run
  /// (--peak-rss on the benches/driver; the perf suite always records it).
  bool record_peak_rss = false;
};

struct CampaignOutcome {
  obs::RunManifest manifest;
  std::size_t reps = 0;        ///< resolved replications per point
  std::size_t units_total = 0;
  std::size_t cache_hits = 0;
  std::size_t executed = 0;    ///< live simulations (excludes trace replays)
  /// campaign.units.{total,cached,executed} counters.
  obs::MetricsSnapshot progress;
  int exit_code = 0;  ///< non-zero when the manifest could not be written
};

[[nodiscard]] CampaignOutcome run_campaign(const CampaignSpec& spec,
                                           const CampaignOptions& options);

}  // namespace alert::campaign
