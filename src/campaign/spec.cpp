#include "campaign/spec.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "core/scenario_codec.hpp"
#include "obs/json_value.hpp"

namespace alert::campaign {

core::ScenarioConfig paper_default_scenario() {
  core::ScenarioConfig cfg;
  cfg.field = {0.0, 0.0, 1000.0, 1000.0};
  cfg.node_count = 200;
  cfg.speed_mps = 2.0;
  cfg.radio_range_m = 250.0;
  cfg.flow_count = 10;
  cfg.packet_interval_s = 2.0;
  cfg.payload_bytes = 512;
  cfg.duration_s = 100.0;
  cfg.alert.partitions_h = 5;
  cfg.seed = 0xA1E47;
  return cfg;
}

const char* paper_defaults_line() {
  return "defaults: 1000x1000 m, 200 nodes, 2 m/s, 250 m range, 10 flows, "
         "512 B CBR every 2 s, 100 s, H=5";
}

namespace {

util::SeriesPoint from_acc(double x, const util::Accumulator& a) {
  return {x, a.mean(), a.ci95_halfwidth()};
}

util::SeriesPoint from_acc_scaled(double x, const util::Accumulator& a,
                                  double scale) {
  return {x, a.mean() * scale, a.ci95_halfwidth() * scale};
}

struct NamedExtractor {
  const char* name;
  util::SeriesPoint (*fn)(double, const core::ExperimentResult&);
};

constexpr NamedExtractor kExtractors[] = {
    {"delivery_rate",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.delivery_rate);
     }},
    {"latency_ms",
     [](double x, const core::ExperimentResult& r) {
       return from_acc_scaled(x, r.latency_s, 1e3);
     }},
    {"e2e_delay_ms",
     [](double x, const core::ExperimentResult& r) {
       return from_acc_scaled(x, r.e2e_delay_s, 1e3);
     }},
    {"hops",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.hops);
     }},
    {"hops_with_control",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.hops_with_control);
     }},
    {"participants",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.participants);
     }},
    {"route_overlap",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.route_overlap);
     }},
    {"rf_per_packet",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.rf_per_packet);
     }},
    {"partitions_per_packet",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.partitions_per_packet);
     }},
    {"cover_per_data",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.cover_per_data);
     }},
    {"energy_per_delivered_j",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.energy_per_delivered_j);
     }},
    {"energy_total_j",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.energy_total_j);
     }},
    {"energy_crypto_j",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.energy_crypto_j);
     }},
    {"energy_max_node_j",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.energy_max_node_j);
     }},
    {"timing_source_rate",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.timing_source_rate);
     }},
    {"timing_dest_rate",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.timing_dest_rate);
     }},
    {"intersection_success",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.intersection_success);
     }},
    {"intersection_identified",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.intersection_identified);
     }},
    {"intersection_frequency",
     [](double x, const core::ExperimentResult& r) {
       return from_acc(x, r.intersection_frequency);
     }},
};

}  // namespace

std::optional<YMetricFn> y_metric_extractor(std::string_view name) {
  for (const NamedExtractor& e : kExtractors) {
    if (name == e.name) return YMetricFn(e.fn);
  }
  return std::nullopt;
}

std::vector<std::string> y_metric_names() {
  std::vector<std::string> out;
  out.reserve(std::size(kExtractors));
  for (const NamedExtractor& e : kExtractors) out.emplace_back(e.name);
  return out;
}

void default_reduce(const CampaignSpec& spec,
                    const std::vector<PointResult>& points,
                    const ReduceContext& ctx, obs::RunManifest& manifest) {
  const auto fn = y_metric_extractor(spec.y_metric);
  if (!fn) return;  // validated at spec-construction time
  std::vector<util::Series> series;
  for (const PointResult& pr : points) {
    util::Series* target = nullptr;
    for (util::Series& s : series) {
      if (s.name == pr.spec->curve) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      series.push_back(util::Series{pr.spec->curve, {}});
      target = &series.back();
    }
    target->points.push_back(  // alert-lint: allow(iterator-invalidation)
        (*fn)(pr.spec->x, pr.result));
  }
  for (util::Series& s : series) manifest.series.push_back(std::move(s));
  manifest.notes.push_back("(reps per point: " + std::to_string(ctx.reps) +
                           ")");
}

namespace {

/// Render a JSON scalar as the string apply_scenario_param expects:
/// strings pass through, numbers keep their raw source token (exact),
/// booleans become "true"/"false".
bool scalar_to_string(const obs::JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case obs::JsonValue::Kind::String:
      *out = v.as_string();
      return true;
    case obs::JsonValue::Kind::Number:
      *out = v.raw_number();
      return true;
    case obs::JsonValue::Kind::Bool:
      *out = v.as_bool() ? "true" : "false";
      return true;
    default:
      return false;
  }
}

bool apply_param_object(const obs::JsonValue& obj, core::ScenarioConfig* cfg,
                        const std::string& where, std::string* error) {
  if (!obj.is_object()) {
    if (error != nullptr) *error = where + " must be an object";
    return false;
  }
  for (const auto& [key, value] : obj.object()) {
    std::string text;
    if (!scalar_to_string(value, &text)) {
      if (error != nullptr) {
        *error = where + "." + key + ": value must be a scalar";
      }
      return false;
    }
    std::string param_error;
    if (!core::apply_scenario_param(*cfg, key, text, &param_error)) {
      if (error != nullptr) *error = where + ": " + param_error;
      return false;
    }
  }
  return true;
}

}  // namespace

std::optional<CampaignSpec> load_spec_json(std::string_view json,
                                           std::string* error) {
  const auto doc = obs::parse_json(json, error);
  if (!doc) return std::nullopt;
  if (!doc->is_object()) {
    if (error != nullptr) *error = "spec must be a JSON object";
    return std::nullopt;
  }

  const auto fail = [error](const std::string& message)
      -> std::optional<CampaignSpec> {
    if (error != nullptr) *error = message;
    return std::nullopt;
  };

  const obs::JsonValue* schema = doc->find("schema");
  if (schema == nullptr || schema->as_string() != kSpecSchema) {
    return fail(std::string("spec schema must be \"") + kSpecSchema + "\"");
  }

  CampaignSpec spec;
  const obs::JsonValue* name = doc->find("name");
  if (name == nullptr || !name->is_string() || name->as_string().empty()) {
    return fail("spec needs a non-empty string \"name\"");
  }
  spec.name = name->as_string();
  if (const obs::JsonValue* v = doc->find("title"); v != nullptr) {
    spec.title = v->as_string();
  }
  if (spec.title.empty()) spec.title = spec.name;
  if (const obs::JsonValue* v = doc->find("banner"); v != nullptr) {
    spec.banner = v->as_string();
  }
  if (spec.banner.empty()) spec.banner = spec.title;
  if (const obs::JsonValue* v = doc->find("x_label"); v != nullptr) {
    spec.x_label = v->as_string();
  }
  if (const obs::JsonValue* v = doc->find("y_label"); v != nullptr) {
    spec.y_label = v->as_string();
  }
  if (const obs::JsonValue* v = doc->find("reps"); v != nullptr) {
    const std::int64_t reps = v->as_i64(-1);
    if (reps <= 0 ||
        static_cast<std::size_t>(reps) > core::kMaxReplications) {
      return fail("\"reps\" must be a positive integer");
    }
    spec.fallback_reps = static_cast<std::size_t>(reps);
  }

  const obs::JsonValue* y_metric = doc->find("y_metric");
  if (y_metric == nullptr || !y_metric->is_string()) {
    return fail("spec needs a string \"y_metric\"");
  }
  spec.y_metric = y_metric->as_string();
  if (!y_metric_extractor(spec.y_metric)) {
    std::string known;
    for (const std::string& n : y_metric_names()) {
      known += known.empty() ? n : ", " + n;
    }
    return fail("unknown y_metric \"" + spec.y_metric + "\" (known: " +
                known + ")");
  }

  core::ScenarioConfig base = paper_default_scenario();
  if (const obs::JsonValue* v = doc->find("base"); v != nullptr) {
    if (!apply_param_object(*v, &base, "base", error)) return std::nullopt;
  }

  const obs::JsonValue* x = doc->find("x");
  if (x == nullptr || !x->is_object()) {
    return fail("spec needs an object \"x\" with \"param\" and \"values\"");
  }
  const obs::JsonValue* x_param = x->find("param");
  const obs::JsonValue* x_values = x->find("values");
  if (x_param == nullptr || !x_param->is_string() || x_values == nullptr ||
      !x_values->is_array() || x_values->size() == 0) {
    return fail("\"x\" needs a string \"param\" and a non-empty array "
                "\"values\"");
  }
  if (spec.x_label.empty()) spec.x_label = x_param->as_string();
  if (spec.y_label.empty()) spec.y_label = spec.y_metric;

  struct Curve {
    std::string name;
    const obs::JsonValue* set;  ///< may be nullptr (no overrides)
  };
  std::vector<Curve> curves;
  if (const obs::JsonValue* v = doc->find("curves"); v != nullptr) {
    if (!v->is_array() || v->size() == 0) {
      return fail("\"curves\" must be a non-empty array");
    }
    for (const obs::JsonValue& c : v->array()) {
      const obs::JsonValue* cname = c.find("name");
      if (!c.is_object() || cname == nullptr || !cname->is_string()) {
        return fail("each curve needs a string \"name\"");
      }
      curves.push_back({cname->as_string(), c.find("set")});
    }
  } else {
    curves.push_back({spec.name, nullptr});
  }

  for (const Curve& curve : curves) {
    core::ScenarioConfig curve_base = base;
    if (curve.set != nullptr &&
        !apply_param_object(*curve.set, &curve_base,
                            "curves[" + curve.name + "].set", error)) {
      return std::nullopt;
    }
    for (const obs::JsonValue& xv : x_values->array()) {
      std::string text;
      if (!scalar_to_string(xv, &text)) {
        return fail("x.values entries must be scalars");
      }
      PointSpec point;
      point.curve = curve.name;
      point.x = xv.as_double();
      point.config = curve_base;
      std::string param_error;
      if (!core::apply_scenario_param(point.config, x_param->as_string(),
                                      text, &param_error)) {
        return fail("x sweep: " + param_error);
      }
      spec.points.push_back(std::move(point));
    }
  }

  if (const obs::JsonValue* v = doc->find("notes"); v != nullptr) {
    if (!v->is_array()) return fail("\"notes\" must be an array of strings");
    for (const obs::JsonValue& n : v->array()) {
      spec.notes.push_back(n.as_string());
    }
  }
  return spec;
}

std::optional<CampaignSpec> load_spec_file(const std::string& path,
                                           std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot read spec file: " + path;
    return std::nullopt;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto spec = load_spec_json(buffer.str(), error);
  if (!spec && error != nullptr) *error = path + ": " + *error;
  return spec;
}

}  // namespace alert::campaign
