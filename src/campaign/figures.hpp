#pragma once

/// \file figures.hpp
/// The built-in campaign registry: every figure of the paper's evaluation
/// (and this repo's ablations) as a CampaignSpec builder. Each builder
/// reproduces the corresponding bench binary's exact points, series, table
/// labels and commentary; the bench binaries themselves are one-line
/// wrappers over figure_main() and `alertsim-campaign --all` runs the whole
/// registry in one process.

#include <string_view>
#include <vector>

#include "campaign/spec.hpp"

namespace alert::campaign {

struct FigureDef {
  const char* name;  ///< machine id == bench binary name
  CampaignSpec (*build)();
};

/// All registered figures, in the paper's presentation order.
[[nodiscard]] const std::vector<FigureDef>& figure_registry();

/// Lookup by machine name; nullptr when unknown.
[[nodiscard]] const FigureDef* find_figure(std::string_view name);

}  // namespace alert::campaign
