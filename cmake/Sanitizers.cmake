# Sanitizers.cmake — uniform sanitizer wiring for every target in the tree.
#
# Usage:
#   cmake -DALERTSIM_SANITIZE="address;undefined"   # ASan + UBSan
#   cmake -DALERTSIM_SANITIZE="thread"              # TSan
#   cmake -DALERTSIM_SANITIZE="memory"              # MSan (clang only)
#
# The flags are applied globally (add_compile_options/add_link_options) so
# src, tests, bench and examples are all instrumented identically — mixing
# instrumented and uninstrumented TUs produces false negatives.
#
# Suppression files live in tools/sanitizers/ and are exported through
# ALERTSIM_SANITIZER_TEST_ENV, which tests/CMakeLists.txt attaches to every
# registered test's ENVIRONMENT property.

set(ALERTSIM_SANITIZE "" CACHE STRING
    "Semicolon list of sanitizers: address;undefined | thread | memory")

set(ALERTSIM_SANITIZER_TEST_ENV "")

if(NOT ALERTSIM_SANITIZE)
  return()
endif()

if(CMAKE_CXX_COMPILER_ID STREQUAL "MSVC")
  message(FATAL_ERROR "ALERTSIM_SANITIZE is only supported for GCC/Clang")
endif()

set(_alertsim_san_flags "")
foreach(_san IN LISTS ALERTSIM_SANITIZE)
  if(_san STREQUAL "address")
    list(APPEND _alertsim_san_flags -fsanitize=address)
  elseif(_san STREQUAL "undefined")
    list(APPEND _alertsim_san_flags -fsanitize=undefined
         -fno-sanitize-recover=undefined)
  elseif(_san STREQUAL "thread")
    list(APPEND _alertsim_san_flags -fsanitize=thread)
  elseif(_san STREQUAL "memory")
    if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      message(FATAL_ERROR
        "MemorySanitizer requires clang; current compiler is "
        "${CMAKE_CXX_COMPILER_ID}. Use -DALERTSIM_SANITIZE=address;undefined "
        "or switch CMAKE_CXX_COMPILER to clang++.")
    endif()
    list(APPEND _alertsim_san_flags -fsanitize=memory
         -fsanitize-memory-track-origins)
  elseif(_san STREQUAL "leak")
    list(APPEND _alertsim_san_flags -fsanitize=leak)
  else()
    message(FATAL_ERROR "Unknown sanitizer '${_san}' in ALERTSIM_SANITIZE")
  endif()
endforeach()

# ASan and TSan are mutually exclusive instrumentation modes.
if("address" IN_LIST ALERTSIM_SANITIZE AND "thread" IN_LIST ALERTSIM_SANITIZE)
  message(FATAL_ERROR "address and thread sanitizers cannot be combined")
endif()

list(REMOVE_DUPLICATES _alertsim_san_flags)
message(STATUS "alertsim: sanitizers enabled: ${ALERTSIM_SANITIZE}")

add_compile_options(${_alertsim_san_flags} -fno-omit-frame-pointer -g)
add_link_options(${_alertsim_san_flags})

# Runtime options, including suppressions, handed to every test process.
set(_supp_dir ${PROJECT_SOURCE_DIR}/tools/sanitizers)
if("address" IN_LIST ALERTSIM_SANITIZE)
  list(APPEND ALERTSIM_SANITIZER_TEST_ENV
    "ASAN_OPTIONS=detect_leaks=1:strict_string_checks=1:detect_stack_use_after_return=1:check_initialization_order=1:suppressions=${_supp_dir}/asan.supp"
    "LSAN_OPTIONS=suppressions=${_supp_dir}/lsan.supp")
endif()
if("undefined" IN_LIST ALERTSIM_SANITIZE)
  list(APPEND ALERTSIM_SANITIZER_TEST_ENV
    "UBSAN_OPTIONS=print_stacktrace=1:halt_on_error=1:suppressions=${_supp_dir}/ubsan.supp")
endif()
if("thread" IN_LIST ALERTSIM_SANITIZE)
  list(APPEND ALERTSIM_SANITIZER_TEST_ENV
    "TSAN_OPTIONS=halt_on_error=1:second_deadlock_stack=1:suppressions=${_supp_dir}/tsan.supp")
endif()
