/// \file battlefield.cpp
/// The paper's motivating scenario (Sec. 1): a MANET deployed in a
/// battlefield. Squads move under group mobility; a scout (source) reports
/// to a commander (destination) under ALERT while a passive adversary
/// eavesdrops on everything. The example shows, per squad configuration,
/// whether the adversary's timing and intersection attacks can find the
/// commander or the scout, and what the anonymity costs in delay.

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace alert;

  std::printf("battlefield — squads under group mobility, ALERT comms,\n"
              "passive adversary with full radio coverage\n\n");
  std::printf("%-24s %-9s %-11s %-12s %-12s %-10s\n", "squad layout",
              "delivery", "delay(ms)", "scout found", "cmdr found",
              "relays");

  struct Layout {
    std::size_t groups;
    double range;
    const char* name;
  };
  for (const Layout layout : {Layout{10, 150.0, "10 squads x 150 m"},
                              Layout{5, 200.0, "5 squads x 200 m"}}) {
    core::ScenarioConfig cfg;
    cfg.mobility = core::MobilityKind::Group;
    cfg.group_count = layout.groups;
    cfg.group_range_m = layout.range;
    cfg.flow_count = 6;  // six scout->commander reporting flows
    cfg.duration_s = 60.0;
    cfg.run_attacks = true;
    cfg.min_pair_distance_m = 250.0;  // scouts report across the field
    cfg.alert.intersection_countermeasure = true;
    cfg.alert.max_retransmissions = 4;
    cfg.seed = 2026;
    const core::ExperimentResult r = core::run_experiment(cfg, 5);
    std::printf("%-24s %-9.2f %-11.1f %-12.2f %-12.2f %-10.1f\n",
                layout.name, r.delivery_rate.mean(),
                r.e2e_delay_s.mean() * 1e3, r.timing_source_rate.mean(),
                r.intersection_success.mean(), r.participants.mean());
  }

  std::printf(
      "\n'scout found' is the adversary's timing-attack success at\n"
      "identifying the reporting scout; 'cmdr found' its intersection-\n"
      "attack success at pinning the commander among the k-anonymity\n"
      "receivers. Both should stay near zero; 'relays' shows how many\n"
      "nodes share the routing burden (route anonymity + robustness to\n"
      "node compromise, Sec. 3.1).\n");
  return 0;
}
