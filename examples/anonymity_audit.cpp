/// \file anonymity_audit.cpp
/// Audit the anonymity of every implemented routing protocol with the full
/// adversary battery (timing attack, strict-intersection attack, the
/// stronger frequency-ranking variant, route tracing) and print a
/// practitioner-style report. This is the Table 1 story told per
/// mechanism, including the effect of switching ALERT's individual
/// defences off — a mini ablation of "notify and go" and the Sec. 3.3
/// countermeasure.

#include <cstdio>

#include "core/experiment.hpp"

namespace {

void audit(const char* label, alert::core::ScenarioConfig cfg) {
  cfg.run_attacks = true;
  cfg.seed = 99;
  const alert::core::ExperimentResult r =
      alert::core::run_experiment(cfg, 5);
  std::printf("%-34s %8.2f %8.2f %8.2f %8.2f %9.2f\n", label,
              r.timing_source_rate.mean(), r.timing_dest_rate.mean(),
              r.intersection_success.mean(), r.intersection_frequency.mean(),
              r.route_overlap.mean());
}

}  // namespace

int main() {
  using namespace alert;

  std::printf("anonymity audit — 200 nodes, 100 s, global passive "
              "adversary (5 runs each)\n\n");
  std::printf("%-34s %8s %8s %8s %8s %9s\n", "configuration", "src-tim",
              "dst-tim", "dst-int", "dst-freq", "route-ovl");

  core::ScenarioConfig base;
  base.duration_s = 100.0;

  core::ScenarioConfig alert_full = base;
  alert_full.alert.intersection_countermeasure = true;
  audit("ALERT (all defences)", alert_full);

  core::ScenarioConfig no_cm = base;
  audit("ALERT (no intersection defence)", no_cm);

  core::ScenarioConfig no_notify = base;
  no_notify.alert.notify_and_go = false;
  audit("ALERT (no notify-and-go)", no_notify);

  core::ScenarioConfig gpsr = base;
  gpsr.protocol = core::ProtocolKind::Gpsr;
  audit("GPSR", gpsr);

  core::ScenarioConfig alarm = base;
  alarm.protocol = core::ProtocolKind::Alarm;
  audit("ALARM", alarm);

  core::ScenarioConfig ao2p = base;
  ao2p.protocol = core::ProtocolKind::Ao2p;
  audit("AO2P", ao2p);

  core::ScenarioConfig zap = base;
  zap.protocol = core::ProtocolKind::Zap;
  audit("ZAP (dest-only anonymity)", zap);

  std::printf(
      "\nreading the columns:\n"
      "  src-tim   timing attack finds the source (notify-and-go defends)\n"
      "  dst-tim   timing attack finds the destination (zone broadcast\n"
      "            hides D among k receivers)\n"
      "  dst-int   strict intersection attack pins D (Sec. 3.3\n"
      "            countermeasure defends)\n"
      "  dst-freq  frequency-ranking intersection variant — stronger than\n"
      "            the paper's attacker; see EXPERIMENTS.md\n"
      "  route-ovl consecutive-route overlap (low = untraceable routes)\n");
  return 0;
}
