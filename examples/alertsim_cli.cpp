/// \file alertsim_cli.cpp
/// Scenario driver: run any protocol/parameter combination from the
/// command line and print the full metric set (optionally as a CSV row,
/// for scripting sweeps beyond the canned figure benches).
///
///   alertsim_cli --protocol alert --nodes 200 --speed 2 --duration 100
///                --flows 10 --h 5 --reps 10 [--attacks] [--csv]
///                [--mobility rwp|group|static] [--groups 10]
///                [--group-range 150] [--no-dest-update]
///                [--countermeasure] [--seed 1]
///                [--trace-out run.json] [--metrics-out manifest.json]
///                [--log-level info] [--profile]

#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "obs/manifest.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

alert::core::ProtocolKind parse_protocol(const std::string& name) {
  using alert::core::ProtocolKind;
  if (name == "gpsr") return ProtocolKind::Gpsr;
  if (name == "alarm") return ProtocolKind::Alarm;
  if (name == "ao2p") return ProtocolKind::Ao2p;
  if (name == "zap") return ProtocolKind::Zap;
  return ProtocolKind::Alert;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace alert;

  std::string error;
  const auto parsed = util::CliArgs::parse(argc, argv, &error);
  if (!parsed) {
    std::fprintf(stderr, "error: %s\n", error.c_str());
    return 2;
  }
  const util::CliArgs& args = *parsed;

  core::ScenarioConfig cfg;
  cfg.protocol = parse_protocol(args.get("protocol", std::string("alert")));
  cfg.node_count = static_cast<std::size_t>(args.get("nodes", std::int64_t{200}));
  cfg.speed_mps = args.get("speed", 2.0);
  cfg.duration_s = args.get("duration", 100.0);
  cfg.flow_count = static_cast<std::size_t>(args.get("flows", std::int64_t{10}));
  cfg.payload_bytes = static_cast<std::size_t>(args.get("payload", std::int64_t{512}));
  cfg.packet_interval_s = args.get("interval", 2.0);
  cfg.alert.partitions_h = static_cast<int>(args.get("h", std::int64_t{5}));
  cfg.alert.intersection_countermeasure = args.get("countermeasure", false);
  cfg.alert.notify_and_go = !args.get("no-notify", false);
  cfg.destination_update = !args.get("no-dest-update", false);
  cfg.run_attacks = args.get("attacks", false);
  cfg.seed = static_cast<std::uint64_t>(args.get("seed", std::int64_t{1}));
  cfg.radio_range_m = args.get("range", 250.0);
  cfg.trace_path = args.get("trace", std::string());  // JSONL event dump

  // Shared observability flags (see util/cli.hpp): structured trace sink,
  // run-manifest output, log threshold.
  const util::CommonFlags obs_flags = util::CommonFlags::from(args);
  cfg.obs.trace_out = obs_flags.trace_out;
  cfg.obs.profile = args.get("profile", false) || !obs_flags.metrics_out.empty();
  if (const auto level = util::parse_log_level(obs_flags.log_level)) {
    util::set_log_level(*level);
  } else {
    std::fprintf(stderr, "error: bad --log-level=%s\n",
                 obs_flags.log_level.c_str());
    return 2;
  }

  const std::string mobility = args.get("mobility", std::string("rwp"));
  if (mobility == "group") {
    cfg.mobility = core::MobilityKind::Group;
    cfg.group_count = static_cast<std::size_t>(args.get("groups", std::int64_t{10}));
    cfg.group_range_m = args.get("group-range", 150.0);
  } else if (mobility == "static") {
    cfg.mobility = core::MobilityKind::Static;
  }

  const auto reps = static_cast<std::size_t>(args.get("reps", std::int64_t{10}));
  const bool csv = args.get("csv", false);
  if (obs_flags.threads < 0) {
    std::fprintf(stderr, "error: --threads must be >= 0\n");
    return 2;
  }

  for (const std::string& key : args.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s ignored\n", key.c_str());
  }

  const core::ExperimentResult r = core::run_experiment(
      cfg, reps, static_cast<std::size_t>(obs_flags.threads));

  if (!obs_flags.metrics_out.empty()) {
    obs::RunManifest manifest;
    manifest.name = "alertsim_cli";
    manifest.title = std::string("alertsim_cli — ") +
                     core::protocol_name(cfg.protocol);
    manifest.seed = cfg.seed;
    manifest.replications = reps;
    manifest.add_param("protocol", core::protocol_name(cfg.protocol));
    manifest.add_param("node_count", std::to_string(cfg.node_count));
    manifest.add_param("speed_mps", std::to_string(cfg.speed_mps));
    manifest.add_param("duration_s", std::to_string(cfg.duration_s));
    manifest.add_param("flow_count", std::to_string(cfg.flow_count));
    manifest.trace_digests = r.trace_digests;
    manifest.metrics = r.metrics;
    manifest.profile = r.profile;
    if (!manifest.write_file(obs_flags.metrics_out)) return 1;
  }

  if (csv) {
    std::printf(
        "protocol,nodes,speed,duration,reps,delivery,latency_ms,e2e_ms,"
        "hops,participants,rf_per_packet,route_overlap,energy_per_pkt_j,"
        "timing_src,intersect_p\n");
    std::printf("%s,%zu,%.3g,%.3g,%zu,%.4f,%.3f,%.3f,%.3f,%.2f,%.3f,%.3f,"
                "%.5f,%.3f,%.3f\n",
                core::protocol_name(cfg.protocol), cfg.node_count,
                cfg.speed_mps, cfg.duration_s, reps,
                r.delivery_rate.mean(), r.latency_s.mean() * 1e3,
                r.e2e_delay_s.mean() * 1e3, r.hops.mean(),
                r.participants.mean(), r.rf_per_packet.mean(),
                r.route_overlap.mean(), r.energy_per_delivered_j.mean(),
                r.timing_source_rate.mean(), r.intersection_success.mean());
    return 0;
  }

  std::printf("%s — %zu nodes, %.1f m/s, %.0f s, %zu flows, %zu reps\n\n",
              core::protocol_name(cfg.protocol), cfg.node_count,
              cfg.speed_mps, cfg.duration_s, cfg.flow_count, reps);
  std::printf("  delivery rate        %.3f (+/-%.3f)\n",
              r.delivery_rate.mean(), r.delivery_rate.ci95_halfwidth());
  std::printf("  latency per packet   %.2f ms (+/-%.2f)\n",
              r.latency_s.mean() * 1e3, r.latency_s.ci95_halfwidth() * 1e3);
  std::printf("  end-to-end delay     %.2f ms\n", r.e2e_delay_s.mean() * 1e3);
  std::printf("  hops per packet      %.2f (+/-%.2f)\n", r.hops.mean(),
              r.hops.ci95_halfwidth());
  std::printf("  participants/flow    %.1f\n", r.participants.mean());
  std::printf("  RFs per packet       %.2f\n", r.rf_per_packet.mean());
  std::printf("  route overlap        %.2f\n", r.route_overlap.mean());
  std::printf("  energy per packet    %.4f J\n",
              r.energy_per_delivered_j.mean());
  if (cfg.run_attacks) {
    std::printf("  timing src-id rate   %.2f\n", r.timing_source_rate.mean());
    std::printf("  intersection P(D)    %.2f (freq %.2f)\n",
                r.intersection_success.mean(),
                r.intersection_frequency.mean());
  }
  return 0;
}
