/// \file multimedia_stream.cpp
/// The paper's resource-constraint motivation (Sec. 1): multimedia (e.g.
/// video) transmission needs routing efficiency — an anonymity layer that
/// costs hundreds of milliseconds per packet ruins it. This example
/// streams CBR "video" (heavier packets, shorter interval) over each
/// protocol and reports whether the stream's playout deadline can be met,
/// reproducing the paper's argument that ALERT is the only anonymous
/// option that keeps multimedia viable.

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace alert;

  constexpr double kDeadlineMs = 150.0;  // interactive-video budget

  std::printf("multimedia stream — 1 kB packets every 0.5 s, 200 nodes\n\n");
  std::printf("%-8s %-10s %-12s %-12s %-14s %s\n", "proto", "delivery",
              "latency(ms)", "hops", "crypto-bound?",
              "meets 150 ms playout?");

  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr,
        core::ProtocolKind::Alarm, core::ProtocolKind::Ao2p}) {
    core::ScenarioConfig cfg;
    cfg.protocol = proto;
    cfg.payload_bytes = 1024;
    cfg.packet_interval_s = 0.5;
    cfg.flow_count = 4;
    cfg.duration_s = 60.0;
    cfg.seed = 7;
    const core::ExperimentResult r = core::run_experiment(cfg, 5);
    const double latency_ms = r.latency_s.mean() * 1e3;
    const bool crypto_bound = proto == core::ProtocolKind::Alarm ||
                              proto == core::ProtocolKind::Ao2p;
    std::printf("%-8s %-10.2f %-12.1f %-12.2f %-14s %s\n",
                core::protocol_name(proto), r.delivery_rate.mean(),
                latency_ms, r.hops.mean(), crypto_bound ? "yes" : "no",
                latency_ms <= kDeadlineMs ? "YES" : "no");
  }

  std::printf(
      "\nALERT pays one symmetric encryption per packet; ALARM and AO2P\n"
      "pay public-key operations per hop (Sec. 5.2: 2-3 hundred ms each),\n"
      "so only GPSR (no anonymity) and ALERT stay inside an interactive\n"
      "playout budget — the paper's low-cost-anonymity claim.\n");
  return 0;
}
