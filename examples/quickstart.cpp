/// \file quickstart.cpp
/// Minimal end-to-end use of the alertsim public API: build a 200-node
/// MANET on a 1 km^2 field (the paper's default setup), run ALERT traffic
/// between 10 random S-D pairs for 100 simulated seconds, and print the
/// paper's six evaluation metrics next to GPSR's for comparison.

#include <cstdio>

#include "core/experiment.hpp"

int main() {
  using namespace alert;

  core::ScenarioConfig cfg;      // paper defaults: 1000x1000 m, 200 nodes,
  cfg.duration_s = 100.0;        // 2 m/s, 250 m range, 10 pairs, 512 B CBR
  cfg.run_attacks = true;
  cfg.seed = 42;

  std::printf("alertsim quickstart — %zu nodes, %.0f s, %zu flows\n\n",
              cfg.node_count, cfg.duration_s, cfg.flow_count);

  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr}) {
    cfg.protocol = proto;
    const core::ExperimentResult r = core::run_experiment(cfg, 3);
    std::printf("%s:\n", core::protocol_name(proto));
    std::printf("  delivery rate            %.3f\n", r.delivery_rate.mean());
    std::printf("  latency per packet       %.1f ms\n",
                r.latency_s.mean() * 1e3);
    std::printf("  hops per packet          %.2f\n", r.hops.mean());
    std::printf("  participating nodes/flow %.1f\n", r.participants.mean());
    std::printf("  route overlap (Jaccard)  %.2f\n", r.route_overlap.mean());
    std::printf("  random forwarders/packet %.2f\n", r.rf_per_packet.mean());
    std::printf("  timing attack S-id rate  %.2f\n",
                r.timing_source_rate.mean());
    std::printf("  intersection P(find D)   %.2f (freq attack %.2f)\n",
                r.intersection_success.mean(),
                r.intersection_frequency.mean());
    std::printf("\n");
  }
  std::printf(
      "ALERT should match GPSR's delivery at slightly higher latency/hops\n"
      "while spreading traffic over far more nodes and defeating the\n"
      "attacks — see bench/ for the full figure reproductions.\n");
  return 0;
}
