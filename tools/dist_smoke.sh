#!/usr/bin/env bash
# Distributed campaign fan-out smoke test (wired into CI as dist-smoke).
#
# Proves the crash-tolerant fan-out guarantees end to end (docs/DIST.md):
#   1. serial reference run into cache A            -> manifest R
#   2. --aggregate over cache A                     -> byte-identical to R
#   3. 3-worker coordinator into a fresh cache B with one worker SIGKILLed
#      mid-unit (crash injection): the coordinator respawns it, the stale
#      lease is reclaimed within one TTL, the fleet converges -> manifest D
#   4. single-process run over the converged cache B -> byte-identical to D
#      (every unit a cache hit: the single-process byte-identity guarantee)
#   5. D vs R semantic compare — everything but the wall-clock self-profile,
#      which differs between independent live runs by construction
#   6. journal audit: a worker really died, its lease was reclaimed, no unit
#      was claimed more than 1 + max-retries times, >= 3 workers claimed
#   7. --dist-summary manifest carries the convergence counters and
#      validates against the schema (check_manifest.py)
#
# Usage: tools/dist_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
BIN="$BUILD_DIR/tools/alertsim-campaign"
[ -x "$BIN" ] || { echo "dist smoke: $BIN not built" >&2; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/spec.json" <<'EOF'
{
  "schema": "alertsim-campaign-spec/1",
  "name": "dist_sweep",
  "title": "dist smoke: delivery vs speed",
  "y_metric": "delivery_rate",
  "reps": 3,
  "base": {"node_count": 80, "duration_s": 60, "flow_count": 6},
  "x": {"param": "speed_mps", "values": [2, 4, 6]}
}
EOF
run() {  # run <cache-dir> <out-dir> [extra flags...]
  local cache="$1" out="$2"; shift 2
  "$BIN" --spec "$WORK/spec.json" --reps 3 \
    --cache-dir "$cache" --out-dir "$out" "$@"
}

echo "dist smoke: serial reference run"
run "$WORK/cache-a" "$WORK/serial" --threads 2 > "$WORK/serial.log"

echo "dist smoke: aggregate over the serial cache"
run "$WORK/cache-a" "$WORK/agg-a" --aggregate > "$WORK/agg-a.log"
cmp "$WORK/serial/dist_sweep.json" "$WORK/agg-a/dist_sweep.json"
echo "dist smoke: aggregate is byte-identical to the serial manifest"

echo "dist smoke: 3-worker fleet with one worker SIGKILLed mid-unit"
# The first claimer of unit (point 0, rep 1) raises SIGKILL while holding
# its lease — once. The coordinator respawns the dead worker; the dangling
# lease goes stale after --lease-ttl and a peer reclaims it.
ALERTSIM_DIST_CRASH_UNIT="0:1" ALERTSIM_DIST_CRASH_MODE=kill \
  run "$WORK/cache-b" "$WORK/dist" --workers 3 --lease-ttl 2 \
  --log-level=info > "$WORK/dist.log" 2> "$WORK/dist.err"
grep -q 'dist: worker pid .* died' "$WORK/dist.err"
echo "dist smoke: coordinator observed the worker death and respawned"

echo "dist smoke: single-process run over the converged fleet cache"
run "$WORK/cache-b" "$WORK/cached" --threads 2 > "$WORK/cached.log"
cmp "$WORK/dist/dist_sweep.json" "$WORK/cached/dist_sweep.json"
echo "dist smoke: fleet manifest is byte-identical to a single-process run"

python3 tools/check_manifest.py "$WORK/serial/dist_sweep.json" \
  "$WORK/dist/dist_sweep.json"

python3 - "$WORK/serial/dist_sweep.json" "$WORK/dist/dist_sweep.json" <<'EOF'
import json, sys
ref, dist = (json.load(open(p)) for p in sys.argv[1:3])
for key in ("trace_digests", "series", "metrics", "params", "seed",
            "replications", "notes"):
    assert ref[key] == dist[key], f"{key} diverged across the fleet"
print("dist smoke: fleet manifest matches the serial reference")
EOF

python3 - "$WORK"/cache-b/journal/dist_sweep.journal <<'EOF'
import collections, sys
claims = collections.Counter()
workers = set()
reclaimed = 0
for line in open(sys.argv[1]):
    parts = line.split()
    if len(parts) >= 3 and parts[0] == "claimed":
        claims[parts[1]] += 1
        workers.add(parts[2])
    elif parts and parts[0] == "reclaimed":
        reclaimed += 1
assert claims, "journal recorded no claims"
worst = max(claims.values())
assert worst <= 3, f"a unit was claimed {worst} times (budget: 1 + 2 retries)"
assert reclaimed >= 1, "the dead worker's lease was never reclaimed"
assert len(workers) >= 3, f"only {len(workers)} workers claimed units"
print(f"dist smoke: journal audit OK ({len(workers)} workers, "
      f"max {worst} claims/unit, {reclaimed} reclaimed)")
EOF

echo "dist smoke: --dist-summary convergence counters"
run "$WORK/cache-b" "$WORK/summary" --aggregate --dist-summary \
  > "$WORK/summary.log"
python3 tools/check_manifest.py "$WORK/summary/dist_sweep.json"
python3 - "$WORK/summary/dist_sweep.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
dist = doc["dist"]
assert dist["workers"] >= 3, dist
assert dist["reclaimed_leases"] >= 1, dist
assert dist["poisoned_units"] == 0, dist
print(f"dist smoke: dist summary OK {dist}")
EOF
echo "dist smoke: OK"
