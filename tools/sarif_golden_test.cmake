# Golden-file check for the analyzer's SARIF 2.1.0 writer. Runs the tool
# over tools/sarif_fixture/ and compares the report byte-for-byte against
# the committed expected.sarif — the writer emits repo-relative URIs under
# uriBaseId SRCROOT and no timestamps, so the output is deterministic
# across machines. Invoked by the lint.sarif_golden ctest entry as:
#   cmake -DANALYZER=<tool> -DFIXTURE_ROOT=<dir> -DGOLDEN=<file>
#         -DOUT=<scratch> -P sarif_golden_test.cmake

foreach(var ANALYZER FIXTURE_ROOT GOLDEN OUT)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "sarif_golden_test: -D${var}=... is required")
  endif()
endforeach()

execute_process(
  COMMAND "${ANALYZER}" --root "${FIXTURE_ROOT}" --skip-headers
          --format sarif --output "${OUT}"
  RESULT_VARIABLE scan_rc)
# The fixture contains deliberate findings, so the contract exit code is 1;
# anything else means the scan itself misbehaved.
if(NOT scan_rc EQUAL 1)
  message(FATAL_ERROR
          "sarif_golden_test: expected exit 1 (findings), got '${scan_rc}'")
endif()

execute_process(
  COMMAND "${CMAKE_COMMAND}" -E compare_files "${OUT}" "${GOLDEN}"
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "sarif_golden_test: ${OUT} differs from ${GOLDEN}; if the writer "
          "changed intentionally, regenerate the golden (header comment in "
          "tools/sarif_fixture/core/sample.cpp has the command)")
endif()
