// alertsim-campaign: run scenario-sweep campaigns through the campaign
// engine — one spec (--spec FILE), a directory of specs (--spec DIR), one
// registry figure (--figure NAME) or the whole built-in registry of paper
// figures (--all) in a single process. Every campaign writes the same
// "alertsim-run-manifest/1" document the figure benches emit, into
// --out-dir (default campaign-out/). Completed (scenario, replication)
// units are served from the content-addressed result cache, so a second
// invocation — or a resume after a crash — skips every computed point and
// reproduces byte-identical manifests.
//
// Usage:
//   alertsim-campaign --list
//   alertsim-campaign --all [--reps N] [--threads N]
//   alertsim-campaign --figure fig14a_latency_vs_nodes
//   alertsim-campaign --spec specs/my_sweep.json --out-dir results
//   Cache control: --cache-dir DIR | --no-cache | --force

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "campaign/engine.hpp"
#include "campaign/figures.hpp"
#include "campaign/spec.hpp"
#include "obs/series.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

namespace fs = std::filesystem;
using namespace alert;

int usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "alertsim-campaign: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: alertsim-campaign (--all | --figure NAME | --spec PATH | "
      "--list)\n"
      "       [--reps N] [--threads N] [--out-dir DIR] [--trace-out FILE]\n"
      "       [--cache-dir DIR] [--no-cache] [--force] [--peak-rss]\n"
      "       [--log-level L]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto args = util::CliArgs::parse(argc, argv, &error);
  if (!args) return usage(error.c_str());
  const util::CommonFlags flags = util::CommonFlags::from(*args);

  const bool all = args->get("all", false);
  const bool list = args->get("list", false);
  const std::string figure = args->get("figure", std::string());
  const std::string spec_path = args->get("spec", std::string());
  const std::string out_dir = args->get("out-dir", std::string("campaign-out"));

  campaign::CampaignOptions base_options;
  base_options.cache_dir = args->get("cache-dir", std::string());
  base_options.use_cache = !args->get("no-cache", false);
  base_options.force = args->get("force", false);
  base_options.record_peak_rss = args->get("peak-rss", false);

  for (const auto& key : args->unused()) {
    return usage(("unknown flag --" + key).c_str());
  }
  if (const auto level = util::parse_log_level(flags.log_level)) {
    util::set_log_level(*level);
  } else {
    return usage(("bad --log-level=" + flags.log_level).c_str());
  }
  if (flags.reps < 0) return usage("--reps must be >= 0");
  if (flags.threads < 0) return usage("--threads must be >= 0");
  base_options.reps = static_cast<std::size_t>(flags.reps);
  base_options.threads = static_cast<std::size_t>(flags.threads);

  if (list) {
    for (const campaign::FigureDef& def : campaign::figure_registry()) {
      const campaign::CampaignSpec spec = def.build();
      obs::print_text_line(std::string(def.name) + "  (" + spec.banner + ")");
    }
    return 0;
  }

  // --- collect the campaigns to run ---------------------------------------
  std::vector<campaign::CampaignSpec> specs;
  if (all) {
    for (const campaign::FigureDef& def : campaign::figure_registry()) {
      specs.push_back(def.build());
    }
  }
  if (!figure.empty()) {
    const campaign::FigureDef* def = campaign::find_figure(figure);
    if (def == nullptr) {
      return usage(("unknown figure '" + figure + "' (see --list)").c_str());
    }
    specs.push_back(def->build());
  }
  if (!spec_path.empty()) {
    std::vector<std::string> files;
    std::error_code ec;
    if (fs::is_directory(spec_path, ec)) {
      for (const auto& entry : fs::directory_iterator(spec_path, ec)) {
        if (entry.path().extension() == ".json") {
          files.push_back(entry.path().string());
        }
      }
      std::sort(files.begin(), files.end());
      if (files.empty()) {
        return usage(("no .json specs in '" + spec_path + "'").c_str());
      }
    } else {
      files.push_back(spec_path);
    }
    for (const std::string& file : files) {
      auto spec = campaign::load_spec_file(file, &error);
      if (!spec) {
        std::fprintf(stderr, "alertsim-campaign: %s: %s\n", file.c_str(),
                     error.c_str());
        return 2;
      }
      specs.push_back(std::move(*spec));
    }
  }
  if (specs.empty()) return usage("nothing to run");

  {
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "alertsim-campaign: cannot create '%s': %s\n",
                   out_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  // --- run ----------------------------------------------------------------
  int exit_code = 0;
  std::size_t total_units = 0;
  std::size_t total_cached = 0;
  std::size_t total_executed = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    campaign::CampaignOptions options = base_options;
    options.metrics_out =
        (fs::path(out_dir) / (specs[i].name + ".json")).string();
    // One trace file holds one replication's events; attach the sink to the
    // first campaign only instead of overwriting it per figure.
    if (i == 0) options.trace_out = flags.trace_out;
    const campaign::CampaignOutcome outcome =
        campaign::run_campaign(specs[i], options);
    if (outcome.exit_code != 0) exit_code = outcome.exit_code;
    total_units += outcome.units_total;
    total_cached += outcome.cache_hits;
    total_executed += outcome.executed;
    obs::print_text_line("");
  }
  obs::print_text_line(
      "campaign summary: " + std::to_string(specs.size()) + " figures, " +
      std::to_string(total_units) + " units, " +
      std::to_string(total_cached) + " cached, " +
      std::to_string(total_executed) + " executed");
  return exit_code;
}
