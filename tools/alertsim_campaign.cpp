// alertsim-campaign: run scenario-sweep campaigns through the campaign
// engine — one spec (--spec FILE), a directory of specs (--spec DIR), one
// registry figure (--figure NAME) or the whole built-in registry of paper
// figures (--all) in a single process. Every campaign writes the same
// "alertsim-run-manifest/1" document the figure benches emit, into
// --out-dir (default campaign-out/). Completed (scenario, replication)
// units are served from the content-addressed result cache, so a second
// invocation — or a resume after a crash — skips every computed point and
// reproduces byte-identical manifests.
//
// Distributed fan-out (docs/DIST.md): any number of --worker processes
// sharing one --cache-dir claim units through crash-tolerant lease files
// and converge on the same cache a single process would produce;
// --aggregate then assembles the byte-identical manifest. --workers N is
// the local coordinator: fork N workers, respawn crashed ones (bounded),
// stream the fleet's progress, and aggregate at convergence.
//
// Usage:
//   alertsim-campaign --list
//   alertsim-campaign --all [--reps N] [--threads N]
//   alertsim-campaign --figure fig14a_latency_vs_nodes
//   alertsim-campaign --spec specs/my_sweep.json --out-dir results
//   Cache control: --cache-dir DIR | --no-cache | --force
//   Distributed:   --worker [--worker-id ID] | --workers N | --aggregate
//                  [--lease-ttl S] [--max-retries N] [--dist-summary]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "campaign/cache.hpp"
#include "campaign/engine.hpp"
#include "campaign/figures.hpp"
#include "campaign/spec.hpp"
#include "dist/aggregate.hpp"
#include "dist/progress.hpp"
#include "dist/worker.hpp"
#include "obs/series.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

namespace fs = std::filesystem;
using namespace alert;

int usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "alertsim-campaign: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: alertsim-campaign (--all | --figure NAME | --spec PATH | "
      "--list)\n"
      "       [--reps N] [--threads N] [--out-dir DIR] [--trace-out FILE]\n"
      "       [--cache-dir DIR] [--no-cache] [--force] [--peak-rss]\n"
      "       [--worker [--worker-id ID] | --workers N | --aggregate]\n"
      "       [--lease-ttl SECONDS] [--max-retries N] [--dist-summary]\n"
      "       [--log-level L]\n");
  return 2;
}

/// Shared dist knobs resolved from the command line.
struct DistConfig {
  std::string cache_dir;  ///< resolved root (never empty)
  std::size_t reps = 0;
  double lease_ttl_s = 30.0;
  dist::RetryPolicy retry;
};

int run_worker_mode(const std::vector<campaign::CampaignSpec>& specs,
                    const DistConfig& cfg, const std::string& worker_id) {
  int exit_code = 0;
  for (const campaign::CampaignSpec& spec : specs) {
    dist::WorkerOptions options;
    options.worker_id = worker_id;
    options.reps = cfg.reps;
    options.cache_dir = cfg.cache_dir;
    options.lease_ttl_s = cfg.lease_ttl_s;
    options.retry = cfg.retry;
    const dist::WorkerOutcome outcome =
        dist::run_worker(spec, options, /*runner=*/{});
    if (outcome.exit_code != 0) exit_code = outcome.exit_code;
  }
  return exit_code;
}

int run_aggregate_mode(const std::vector<campaign::CampaignSpec>& specs,
                       const DistConfig& cfg, const std::string& out_dir,
                       bool dist_summary, bool record_peak_rss) {
  int exit_code = 0;
  for (const campaign::CampaignSpec& spec : specs) {
    dist::AggregateOptions options;
    options.reps = cfg.reps;
    options.cache_dir = cfg.cache_dir;
    options.metrics_out = (fs::path(out_dir) / (spec.name + ".json")).string();
    options.dist_summary = dist_summary;
    options.record_peak_rss = record_peak_rss;
    const dist::AggregateOutcome outcome =
        dist::aggregate_campaign(spec, options);
    if (outcome.exit_code != 0) exit_code = outcome.exit_code;
    obs::print_text_line("");
  }
  return exit_code;
}

/// Local coordinator: fork `worker_count` workers over the shared cache,
/// respawn abnormal deaths (bounded), stream aggregate progress, then
/// assemble the manifests once the fleet drains.
int run_coordinator(const std::vector<campaign::CampaignSpec>& specs,
                    const DistConfig& cfg, const std::string& out_dir,
                    std::size_t worker_count, bool dist_summary,
                    bool record_peak_rss) {
  std::vector<pid_t> alive;
  std::size_t spawned = 0;
  const auto spawn = [&]() -> bool {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("alertsim-campaign: fork");
      return false;
    }
    if (pid == 0) {
      // Child: run the worker loop over every campaign, then hard-exit so
      // the coordinator's buffered state is never flushed twice.
      ::_exit(run_worker_mode(specs, cfg, dist::default_worker_id()));
    }
    alive.push_back(pid);
    ++spawned;
    return true;
  };

  for (std::size_t i = 0; i < worker_count; ++i) {
    if (!spawn()) break;
  }
  if (alive.empty()) return 1;

  // A worker exits 0 only at convergence, so respawning is pure resilience;
  // the bound keeps a deterministic crasher from forking forever.
  std::size_t respawn_budget = 2 * worker_count;
  dist::AggregateProgress last_view;
  bool printed_view = false;
  while (!alive.empty()) {
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, WNOHANG);
    if (pid > 0) {
      alive.erase(std::remove(alive.begin(), alive.end(), pid), alive.end());
      const bool crashed =
          WIFSIGNALED(status) || (WIFEXITED(status) && WEXITSTATUS(status) != 0);
      if (crashed) {
        ALERT_LOG_WARN("dist: worker pid %ld died (status %d)",
                       static_cast<long>(pid), status);
        if (respawn_budget > 0) {
          --respawn_budget;
          (void)spawn();
        }
      }
      continue;
    }

    // Live fleet view: per-worker progress files summed across campaigns.
    dist::AggregateProgress view;
    std::size_t workers_seen = 0;
    for (const campaign::CampaignSpec& spec : specs) {
      const std::string progress_dir =
          (fs::path(cfg.cache_dir) / "dist" / spec.name / "progress").string();
      const auto per_worker = dist::read_progress(progress_dir);
      const dist::AggregateProgress agg = dist::aggregate_progress(per_worker);
      workers_seen = std::max(workers_seen, per_worker.size());
      view.claimed += agg.claimed;
      view.executed += agg.executed;
      view.failed += agg.failed;
      view.reclaimed += agg.reclaimed;
    }
    view.workers = workers_seen;
    if (!printed_view || view.claimed != last_view.claimed ||
        view.executed != last_view.executed ||
        view.failed != last_view.failed ||
        view.reclaimed != last_view.reclaimed) {
      std::string line = "dist: " + std::to_string(view.workers) +
                         " workers, claimed " + std::to_string(view.claimed) +
                         ", executed " + std::to_string(view.executed);
      if (view.failed > 0) line += ", failed " + std::to_string(view.failed);
      if (view.reclaimed > 0) {
        line += ", reclaimed " + std::to_string(view.reclaimed);
      }
      obs::print_text_line(line);
      last_view = view;
      printed_view = true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
  }
  ALERT_LOG_INFO("dist: fleet drained (%zu workers spawned)", spawned);

  return run_aggregate_mode(specs, cfg, out_dir, dist_summary,
                            record_peak_rss);
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto args = util::CliArgs::parse(argc, argv, &error);
  if (!args) return usage(error.c_str());
  const util::CommonFlags flags = util::CommonFlags::from(*args);

  const bool all = args->get("all", false);
  const bool list = args->get("list", false);
  const std::string figure = args->get("figure", std::string());
  const std::string spec_path = args->get("spec", std::string());
  const std::string out_dir = args->get("out-dir", std::string("campaign-out"));

  campaign::CampaignOptions base_options;
  base_options.cache_dir = args->get("cache-dir", std::string());
  base_options.use_cache = !args->get("no-cache", false);
  base_options.force = args->get("force", false);
  base_options.record_peak_rss = args->get("peak-rss", false);

  const bool worker_mode = args->get("worker", false);
  const bool aggregate_mode = args->get("aggregate", false);
  const std::string worker_id = args->get("worker-id", std::string());
  const std::int64_t workers_flag = args->get("workers", std::int64_t{0});
  const bool dist_summary = args->get("dist-summary", false);
  DistConfig dist_cfg;
  dist_cfg.lease_ttl_s = args->get("lease-ttl", 30.0);
  const std::int64_t max_retries =
      args->get("max-retries", std::int64_t{2});

  for (const auto& key : args->unused()) {
    return usage(("unknown flag --" + key).c_str());
  }
  if (const auto level = util::parse_log_level(flags.log_level)) {
    util::set_log_level(*level);
  } else {
    return usage(("bad --log-level=" + flags.log_level).c_str());
  }
  if (flags.reps < 0) return usage("--reps must be >= 0");
  if (flags.threads < 0) return usage("--threads must be >= 0");
  base_options.reps = static_cast<std::size_t>(flags.reps);
  base_options.threads = static_cast<std::size_t>(flags.threads);

  const bool dist_mode = worker_mode || aggregate_mode || workers_flag != 0;
  if (worker_mode + aggregate_mode + (workers_flag != 0) > 1) {
    return usage("--worker, --workers and --aggregate are mutually exclusive");
  }
  if (dist_mode && !base_options.use_cache) {
    return usage("distributed modes need the cache (drop --no-cache)");
  }
  if (workers_flag < 0) return usage("--workers must be >= 1");
  if (max_retries < 0) return usage("--max-retries must be >= 0");
  if (dist_cfg.lease_ttl_s <= 0.0) return usage("--lease-ttl must be > 0");
  dist_cfg.cache_dir = base_options.cache_dir.empty()
                           ? campaign::default_cache_root()
                           : base_options.cache_dir;
  dist_cfg.reps = base_options.reps;
  dist_cfg.retry.max_retries = static_cast<std::size_t>(max_retries);

  if (list) {
    for (const campaign::FigureDef& def : campaign::figure_registry()) {
      const campaign::CampaignSpec spec = def.build();
      obs::print_text_line(std::string(def.name) + "  (" + spec.banner + ")");
    }
    return 0;
  }

  // --- collect the campaigns to run ---------------------------------------
  std::vector<campaign::CampaignSpec> specs;
  if (all) {
    for (const campaign::FigureDef& def : campaign::figure_registry()) {
      specs.push_back(def.build());
    }
  }
  if (!figure.empty()) {
    const campaign::FigureDef* def = campaign::find_figure(figure);
    if (def == nullptr) {
      return usage(("unknown figure '" + figure + "' (see --list)").c_str());
    }
    specs.push_back(def->build());
  }
  if (!spec_path.empty()) {
    std::vector<std::string> files;
    std::error_code ec;
    if (fs::is_directory(spec_path, ec)) {
      for (const auto& entry : fs::directory_iterator(spec_path, ec)) {
        if (entry.path().extension() == ".json") {
          files.push_back(entry.path().string());
        }
      }
      std::sort(files.begin(), files.end());
      if (files.empty()) {
        return usage(("no .json specs in '" + spec_path + "'").c_str());
      }
    } else {
      files.push_back(spec_path);
    }
    for (const std::string& file : files) {
      auto spec = campaign::load_spec_file(file, &error);
      if (!spec) {
        std::fprintf(stderr, "alertsim-campaign: %s: %s\n", file.c_str(),
                     error.c_str());
        return 2;
      }
      specs.push_back(std::move(*spec));
    }
  }
  if (specs.empty()) return usage("nothing to run");

  // --- distributed modes ----------------------------------------------------
  if (worker_mode) {
    // Workers write the shared cache only; the aggregator owns out-dir.
    return run_worker_mode(specs, dist_cfg, worker_id);
  }

  if (aggregate_mode || workers_flag != 0) {
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "alertsim-campaign: cannot create '%s': %s\n",
                   out_dir.c_str(), ec.message().c_str());
      return 1;
    }
    if (aggregate_mode) {
      return run_aggregate_mode(specs, dist_cfg, out_dir, dist_summary,
                                base_options.record_peak_rss);
    }
    return run_coordinator(specs, dist_cfg, out_dir,
                           static_cast<std::size_t>(workers_flag),
                           dist_summary, base_options.record_peak_rss);
  }

  {
    std::error_code ec;
    fs::create_directories(out_dir, ec);
    if (ec) {
      std::fprintf(stderr, "alertsim-campaign: cannot create '%s': %s\n",
                   out_dir.c_str(), ec.message().c_str());
      return 1;
    }
  }

  // --- run ----------------------------------------------------------------
  int exit_code = 0;
  std::size_t total_units = 0;
  std::size_t total_cached = 0;
  std::size_t total_executed = 0;
  std::size_t total_store_errors = 0;
  std::size_t total_journal_errors = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    campaign::CampaignOptions options = base_options;
    options.metrics_out =
        (fs::path(out_dir) / (specs[i].name + ".json")).string();
    // One trace file holds one replication's events; attach the sink to the
    // first campaign only instead of overwriting it per figure.
    if (i == 0) options.trace_out = flags.trace_out;
    const campaign::CampaignOutcome outcome =
        campaign::run_campaign(specs[i], options);
    if (outcome.exit_code != 0) exit_code = outcome.exit_code;
    total_units += outcome.units_total;
    total_cached += outcome.cache_hits;
    total_executed += outcome.executed;
    total_store_errors += outcome.cache_store_errors;
    total_journal_errors += outcome.journal_write_errors;
    obs::print_text_line("");
  }
  std::string summary =
      "campaign summary: " + std::to_string(specs.size()) + " figures, " +
      std::to_string(total_units) + " units, " +
      std::to_string(total_cached) + " cached, " +
      std::to_string(total_executed) + " executed";
  // Degraded persistence is never silent: completed units whose results or
  // journal lines missed the disk will re-execute on the next resume.
  if (total_store_errors > 0 || total_journal_errors > 0) {
    summary += ", DEGRADED (" + std::to_string(total_store_errors) +
               " cache store errors, " + std::to_string(total_journal_errors) +
               " journal write errors)";
  }
  obs::print_text_line(summary);
  return exit_code;
}
