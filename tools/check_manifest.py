#!/usr/bin/env python3
"""check_manifest — validate alertsim run-manifest JSON (and optionally a
Chrome trace file or a benchmark baseline) emitted by the figure benches,
alertsim_cli and alertsim-perf.

Schemas: "alertsim-run-manifest/1" (docs/OBSERVABILITY.md) and
"alertsim-bench/1" (docs/BENCHMARKS.md). Pure stdlib so CI can run it with
any python3, no installs.

Usage:
  tools/check_manifest.py manifest.json [more.json ...]
  tools/check_manifest.py --trace run_trace.json manifest.json
  tools/check_manifest.py --bench BENCH_core.json --bench BENCH_campaign.json

Exit status: 0 = all files valid, 1 = validation failure, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys

SCHEMA_ID = "alertsim-run-manifest/1"
BENCH_SCHEMA_ID = "alertsim-bench/1"
METRIC_KINDS = {"counter", "gauge", "sample", "histogram"}


class Fail(Exception):
    pass


def expect(cond: bool, message: str) -> None:
    if not cond:
        raise Fail(message)


def is_str(x) -> bool:
    return isinstance(x, str)


def is_int(x) -> bool:
    return isinstance(x, int) and not isinstance(x, bool)


def is_num(x) -> bool:
    return (isinstance(x, (int, float)) and not isinstance(x, bool))


def check_accumulator(acc, where: str) -> None:
    expect(isinstance(acc, dict), f"{where}: accumulator must be an object")
    for key in ("count", "mean", "min", "max", "stddev", "ci95"):
        expect(key in acc, f"{where}: accumulator missing '{key}'")
    expect(is_int(acc["count"]) and acc["count"] >= 0,
           f"{where}: count must be a non-negative integer")
    for key in ("mean", "min", "max", "stddev", "ci95"):
        expect(acc[key] is None or is_num(acc[key]),
               f"{where}: '{key}' must be a number (or null for non-finite)")


def check_metrics(snap, where: str) -> None:
    expect(isinstance(snap, dict), f"{where}: must be an object")
    expect(is_int(snap.get("replications")),
           f"{where}: 'replications' must be an integer")
    metrics = snap.get("metrics")
    expect(isinstance(metrics, list), f"{where}: 'metrics' must be an array")
    names = []
    for i, m in enumerate(metrics):
        mw = f"{where}.metrics[{i}]"
        expect(isinstance(m, dict), f"{mw}: must be an object")
        expect(is_str(m.get("name")) and m["name"],
               f"{mw}: 'name' must be a non-empty string")
        names.append(m["name"])
        kind = m.get("kind")
        expect(kind in METRIC_KINDS,
               f"{mw}: 'kind' must be one of {sorted(METRIC_KINDS)}")
        if kind == "counter":
            expect(is_int(m.get("total")) and m["total"] >= 0,
                   f"{mw}: counter 'total' must be a non-negative integer")
            check_accumulator(m.get("per_replication"),
                              f"{mw}.per_replication")
        elif kind == "gauge":
            check_accumulator(m.get("per_replication"),
                              f"{mw}.per_replication")
        elif kind == "sample":
            check_accumulator(m.get("samples"), f"{mw}.samples")
        else:  # histogram
            expect(is_num(m.get("lo")) and is_num(m.get("hi")),
                   f"{mw}: histogram needs numeric 'lo'/'hi'")
            bins = m.get("bins")
            expect(isinstance(bins, list) and
                   all(is_int(b) and b >= 0 for b in bins),
                   f"{mw}: 'bins' must be an array of non-negative integers")
    expect(names == sorted(names),
           f"{where}: metric names must be sorted (merge contract)")


def check_profile(profile, where: str) -> None:
    expect(isinstance(profile, list), f"{where}: must be an array")
    for i, s in enumerate(profile):
        sw = f"{where}[{i}]"
        expect(isinstance(s, dict), f"{sw}: must be an object")
        expect(is_str(s.get("name")) and s["name"],
               f"{sw}: 'name' must be a non-empty string")
        for key in ("count", "total_ns", "max_ns"):
            expect(is_int(s.get(key)) and s[key] >= 0,
                   f"{sw}: '{key}' must be a non-negative integer")
        expect(is_num(s.get("mean_ns")), f"{sw}: 'mean_ns' must be a number")


def check_series(series, where: str) -> None:
    expect(isinstance(series, list), f"{where}: must be an array")
    for i, s in enumerate(series):
        sw = f"{where}[{i}]"
        expect(isinstance(s, dict) and is_str(s.get("name")),
               f"{sw}: must be an object with a string 'name'")
        points = s.get("points")
        expect(isinstance(points, list), f"{sw}: 'points' must be an array")
        for j, p in enumerate(points):
            expect(isinstance(p, dict) and
                   all(is_num(p.get(k)) or p.get(k) is None
                       for k in ("x", "y", "ci")),
                   f"{sw}.points[{j}]: needs numeric 'x', 'y', 'ci'")


def check_manifest(doc) -> None:
    expect(isinstance(doc, dict), "manifest root must be a JSON object")
    expect(doc.get("schema") == SCHEMA_ID,
           f"'schema' must be '{SCHEMA_ID}' (got {doc.get('schema')!r})")
    for key in ("name", "title", "x_label", "y_label", "version"):
        expect(is_str(doc.get(key)), f"'{key}' must be a string")
    expect(doc["name"], "'name' must be non-empty")
    expect(is_int(doc.get("seed")) and doc["seed"] >= 0,
           "'seed' must be a non-negative integer")
    expect(is_int(doc.get("replications")) and doc["replications"] >= 0,
           "'replications' must be a non-negative integer")
    params = doc.get("params")
    expect(isinstance(params, dict) and
           all(is_str(v) for v in params.values()),
           "'params' must be an object with string values")
    digests = doc.get("trace_digests")
    expect(isinstance(digests, list) and all(is_int(d) for d in digests),
           "'trace_digests' must be an array of integers")
    check_metrics(doc.get("metrics"), "metrics")
    check_profile(doc.get("profile"), "profile")
    check_series(doc.get("series"), "series")
    notes = doc.get("notes")
    expect(isinstance(notes, list) and all(is_str(n) for n in notes),
           "'notes' must be an array of strings")
    if "peak_rss_bytes" in doc:  # optional: stamped only under --peak-rss
        expect(is_int(doc["peak_rss_bytes"]) and doc["peak_rss_bytes"] > 0,
               "'peak_rss_bytes' must be a positive integer when present")
    if "dist" in doc:  # optional: stamped only under --dist-summary
        dist = doc["dist"]
        expect(isinstance(dist, dict), "'dist' must be an object")
        for key in ("workers", "reclaimed_leases", "retries",
                    "poisoned_units"):
            expect(is_int(dist.get(key)) and dist[key] >= 0,
                   f"dist.'{key}' must be a non-negative integer")
        expect(set(dist) == {"workers", "reclaimed_leases", "retries",
                             "poisoned_units"},
               "'dist' must contain exactly the four convergence counters")
        expect(dist["workers"] > 0,
               "dist.'workers' must be positive (someone claimed the units)")


def check_bench_report(doc) -> None:
    """Validate an "alertsim-bench/1" baseline (BENCH_core.json, ...)."""
    expect(isinstance(doc, dict), "bench root must be a JSON object")
    expect(doc.get("schema") == BENCH_SCHEMA_ID,
           f"'schema' must be '{BENCH_SCHEMA_ID}' (got {doc.get('schema')!r})")
    expect(is_str(doc.get("suite")) and doc["suite"],
           "'suite' must be a non-empty string")
    expect(is_str(doc.get("version")) and doc["version"],
           "'version' must be a non-empty string")
    host = doc.get("host")
    expect(isinstance(host, dict), "'host' must be an object")
    for key in ("os", "compiler", "build_type"):
        expect(is_str(host.get(key)), f"host.'{key}' must be a string")
    expect(is_int(host.get("hardware_threads")),
           "host.'hardware_threads' must be an integer")
    metrics = doc.get("metrics")
    expect(isinstance(metrics, list) and metrics,
           "'metrics' must be a non-empty array")
    names = []
    for i, m in enumerate(metrics):
        mw = f"metrics[{i}]"
        expect(isinstance(m, dict), f"{mw}: must be an object")
        expect(is_str(m.get("name")) and m["name"],
               f"{mw}: 'name' must be a non-empty string")
        names.append(m["name"])
        expect(is_str(m.get("unit")) and m["unit"],
               f"{mw}: 'unit' must be a non-empty string")
        expect(is_num(m.get("value")), f"{mw}: 'value' must be a number")
        expect(is_num(m.get("iqr")) and m["iqr"] >= 0,
               f"{mw}: 'iqr' must be a non-negative number")
        expect(is_int(m.get("repeats")) and m["repeats"] >= 1,
               f"{mw}: 'repeats' must be a positive integer")
        expect(isinstance(m.get("higher_is_better"), bool),
               f"{mw}: 'higher_is_better' must be a boolean")
        expect(is_num(m.get("tolerance_pct")) and m["tolerance_pct"] > 0,
               f"{mw}: 'tolerance_pct' must be a positive number "
               "(a zero tolerance makes the gate vacuous)")
    expect(names == sorted(names), "metric names must be sorted")
    expect(len(names) == len(set(names)), "metric names must be unique")


def check_chrome_trace(doc) -> None:
    """Well-formedness of the Chrome trace_event JSON array format."""
    expect(isinstance(doc, list), "trace root must be a JSON array")
    expect(len(doc) > 0, "trace must contain at least one event")
    for i, ev in enumerate(doc):
        ew = f"trace[{i}]"
        expect(isinstance(ev, dict), f"{ew}: must be an object")
        expect(is_str(ev.get("name")) and is_str(ev.get("ph")),
               f"{ew}: needs string 'name' and 'ph'")
        expect(is_num(ev.get("ts")), f"{ew}: needs numeric 'ts'")
        expect(is_int(ev.get("pid")) and is_int(ev.get("tid")),
               f"{ew}: needs integer 'pid' and 'tid'")
        if ev["ph"] == "X":
            expect(is_num(ev.get("dur")) and ev["dur"] > 0,
                   f"{ew}: complete ('X') event needs positive 'dur'")


def check_file(path: str, kind: str) -> bool:
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"FAIL {path}: {e}", file=sys.stderr)
        return False
    try:
        if kind == "trace":
            check_chrome_trace(doc)
        elif kind == "bench":
            check_bench_report(doc)
        else:
            check_manifest(doc)
    except Fail as e:
        print(f"FAIL {path}: {e}", file=sys.stderr)
        return False
    print(f"ok   {path} ({kind})")
    return True


def main() -> int:
    parser = argparse.ArgumentParser(
        prog="check_manifest", description=__doc__.splitlines()[0])
    parser.add_argument("manifests", nargs="*",
                        help="run-manifest JSON files to validate")
    parser.add_argument("--trace", action="append", default=[],
                        help="Chrome trace_event JSON file to validate "
                             "(repeatable)")
    parser.add_argument("--bench", action="append", default=[],
                        help="alertsim-bench/1 baseline JSON to validate "
                             "(repeatable)")
    args = parser.parse_args()
    if not args.manifests and not args.trace and not args.bench:
        parser.error("nothing to check: pass manifest files, --trace "
                     "and/or --bench")
    ok = True
    for path in args.manifests:
        ok = check_file(path, "manifest") and ok
    for path in args.trace:
        ok = check_file(path, "trace") and ok
    for path in args.bench:
        ok = check_file(path, "bench") and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
