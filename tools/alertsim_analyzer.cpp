/// \file alertsim_analyzer.cpp
/// Driver for the alert::analysis_tools static analyzer. Replaces the
/// retired Python alert-lint with a token-aware scanner plus whole-program
/// rules (module layering, include cycles, exhaustive-enum sync).
///
/// Modes:
///   alertsim-analyzer [--root=src] [--baseline=FILE] [--format=text|json|
///       sarif] [--output=FILE] [--sarif-out=FILE] [--skip-headers]
///       [--cxx=BIN] [--diff-base=REF] [--threads=N]
///       [--disable=rule,rule,...] [--exclude=prefix,prefix,...]
///       [--stats] [--stats-out=FILE] [--lock-graph-dot=FILE]
///   alertsim-analyzer --self-test [--fixtures=DIR] [--parity=FILE]
///   alertsim-analyzer --write-baseline=FILE [--root=src]
///   alertsim-analyzer --prune-baseline --baseline=FILE [--root=src]
///   alertsim-analyzer --list-rules
///
/// Exit status: 0 clean, 1 findings (or stale/malformed baseline), 2 usage
/// error — the same contract the Python linter had.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "lint/analyzer.hpp"
#include "lint/baseline.hpp"
#include "util/cli.hpp"

namespace {

namespace lint = alert::analysis_tools;
namespace fs = std::filesystem;

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(std::move(cur));
      cur.clear();
    } else if (c != ' ') {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) out.push_back(std::move(cur));
  return out;
}

std::string read_file_or_empty(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

/// `git diff --name-only <ref> -- <root>` as scan-root-relative paths.
/// Fails open to a full scan: a broken git invocation must widen coverage,
/// never narrow it.
std::vector<std::string> changed_paths(const std::string& ref,
                                       const std::string& root) {
  const std::string cmd =
      "git diff --name-only " + ref + " -- '" + root + "' 2>/dev/null";
  std::vector<std::string> out;
  FILE* pipe = ::popen(cmd.c_str(), "r");
  if (pipe == nullptr) return out;
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, pipe)) > 0) text.append(buf, n);
  if (::pclose(pipe) != 0) return {};
  const std::string prefix = root.back() == '/' ? root : root + "/";
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.compare(0, prefix.size(), prefix) == 0) {
      out.push_back(line.substr(prefix.size()));
    }
  }
  return out;
}

/// EXPECT annotations of one fixture: `// EXPECT: <rule> <count>`.
std::map<std::string, std::size_t> parse_expects(const lint::FileData& f) {
  std::map<std::string, std::size_t> out;
  for (const alert::analysis_tools::Token& t : f.tokens) {
    if (t.kind != lint::TokenKind::LineComment &&
        t.kind != lint::TokenKind::BlockComment) {
      continue;
    }
    const std::size_t at = t.text.find("EXPECT:");
    if (at == std::string::npos) continue;
    std::istringstream rest(t.text.substr(at + 7));
    std::string rule;
    std::size_t count = 0;
    if (rest >> rule >> count) out[rule] = count;
  }
  return out;
}

/// --stats table: per-rule wall time and finding counts, plain text for
/// the terminal or a Markdown table for the CI job summary.
void write_stats(std::ostream& os,
                 const std::vector<lint::RuleStat>& stats, bool markdown) {
  if (markdown) {
    os << "| rule | wall (ms) | findings |\n|---|---:|---:|\n";
  } else {
    os << "per-rule stats (wall time summed across phases):\n";
  }
  for (const lint::RuleStat& s : stats) {
    char ms[32];
    std::snprintf(ms, sizeof ms, "%.2f",
                  static_cast<double>(s.wall_ns) / 1e6);
    if (markdown) {
      os << "| " << s.id << " | " << ms << " | " << s.findings << " |\n";
    } else {
      os << "  " << s.id << ": " << ms << " ms, " << s.findings
         << " finding(s)\n";
    }
  }
}

std::string render_counts(const std::map<std::string, std::size_t>& m) {
  if (m.empty()) return "clean";
  std::string out;
  for (const auto& [rule, count] : m) {
    if (!out.empty()) out += ", ";
    out += rule + "=" + std::to_string(count);
  }
  return out;
}

/// Fixture self-test: lint the fixture tree, compare each file's finding
/// counts against its EXPECT annotations, then verify exact location-level
/// parity with the retired Python linter's recorded findings for the
/// legacy rules.
int run_self_test(const std::string& fixtures, const std::string& parity) {
  lint::AnalyzerOptions options;
  options.root = fixtures;
  if (!fs::is_directory(fixtures)) {
    std::cerr << "alertsim-analyzer: fixture dir '" << fixtures
              << "' missing\n";
    return 2;
  }
  const lint::AnalyzeResult result = lint::analyze(options);

  std::map<std::string, std::map<std::string, std::size_t>> found;
  for (const lint::Finding& f : result.report.findings) {
    ++found[f.path][f.rule];
  }
  int failures = 0;
  for (const lint::FileData& f : result.files) {
    const std::map<std::string, std::size_t> expected = parse_expects(f);
    const auto it = found.find(f.rel_path);
    const std::map<std::string, std::size_t> actual =
        it == found.end() ? std::map<std::string, std::size_t>{} : it->second;
    if (expected != actual) {
      ++failures;
      std::cerr << "SELF-TEST FAIL " << f.rel_path << ": expected "
                << render_counts(expected) << ", found "
                << render_counts(actual) << '\n';
    } else {
      std::cerr << "self-test ok    " << f.rel_path << ": "
                << render_counts(expected) << '\n';
    }
  }

  // Location-level parity with the retired Python linter. parity.expected
  // was generated by running it over these fixtures; the token rules must
  // reproduce it finding-for-finding.
  static const std::set<std::string> kLegacyRules{
      "raw-random",           "wall-clock",  "float-type",
      "iterator-invalidation", "raw-stdout", "drop-reason-exhaustive"};
  std::vector<std::string> expected_parity;
  {
    std::istringstream in(read_file_or_empty(parity));
    std::string line;
    while (std::getline(in, line)) {
      if (!line.empty() && line.front() != '#') expected_parity.push_back(line);
    }
  }
  if (expected_parity.empty()) {
    std::cerr << "SELF-TEST FAIL: parity file '" << parity
              << "' missing or empty\n";
    ++failures;
  }
  std::vector<std::string> actual_parity;
  for (const lint::Finding& f : result.report.findings) {
    if (kLegacyRules.count(f.rule) != 0) {
      actual_parity.push_back(f.path + ":" + std::to_string(f.line) + " " +
                              f.rule);
    }
  }
  // parity.expected is sorted as strings (the generator used sort());
  // normalise both sides the same way before comparing.
  std::sort(expected_parity.begin(), expected_parity.end());
  std::sort(actual_parity.begin(), actual_parity.end());
  if (expected_parity != actual_parity) {
    ++failures;
    std::cerr << "SELF-TEST FAIL: python-parity mismatch\n";
    for (const std::string& s : expected_parity) {
      std::cerr << "  expected: " << s << '\n';
    }
    for (const std::string& s : actual_parity) {
      std::cerr << "  actual:   " << s << '\n';
    }
  } else if (!expected_parity.empty()) {
    std::cerr << "self-test ok    python-parity: " << actual_parity.size()
              << " finding(s) match\n";
  }

  // Baseline round-trip: grandfather the first finding, rescan, and check
  // that exactly that finding is absorbed, nothing is stale, and a bogus
  // second entry IS reported stale.
  if (!result.report.findings.empty()) {
    const lint::Finding& first = result.report.findings.front();
    std::string line_text;
    for (const lint::FileData& f : result.files) {
      if (f.rel_path == first.path) {
        line_text = std::string(lint::source_line_text(f.source, first.line));
        break;
      }
    }
    char fp[17];
    std::snprintf(fp, sizeof fp, "%016llx",
                  static_cast<unsigned long long>(lint::baseline_fingerprint(
                      first.rule, first.path, line_text)));
    lint::AnalyzerOptions rescan = options;
    rescan.baseline_text =
        first.rule + " " + first.path + " " + fp + " self-test entry\n" +
        first.rule + " " + first.path +
        " 0000000000000000 deliberately stale\n";
    const lint::AnalyzeResult rebased = lint::analyze(rescan);
    const bool absorbed =
        rebased.report.baseline_applied == 1 &&
        rebased.report.findings.size() + 1 == result.report.findings.size();
    const bool stale_seen = rebased.report.stale_baseline.size() == 1;
    if (!absorbed || !stale_seen || !rebased.baseline_errors.empty()) {
      ++failures;
      std::cerr << "SELF-TEST FAIL: baseline round-trip (absorbed="
                << rebased.report.baseline_applied
                << ", stale=" << rebased.report.stale_baseline.size()
                << ", errors=" << rebased.baseline_errors.size() << ")\n";
    } else {
      std::cerr << "self-test ok    baseline round-trip: 1 absorbed, 1 "
                   "stale detected\n";
    }
  }

  if (failures != 0) {
    std::cerr << "alertsim-analyzer self-test: " << failures
              << " check(s) failed\n";
    return 1;
  }
  std::cerr << "alertsim-analyzer self-test: all fixtures passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  std::optional<alert::util::CliArgs> args =
      alert::util::CliArgs::parse(argc, argv, &error);
  if (!args) {
    std::cerr << "alertsim-analyzer: " << error << '\n';
    return 2;
  }

  if (args->get("list-rules", false)) {
    for (const lint::RuleInfo& r : lint::rule_catalog({})) {
      std::cout << r.id << " [" << lint::severity_name(r.severity) << "] — "
                << r.description << '\n';
    }
    return 0;
  }

  if (args->get("self-test", false)) {
    const std::string fixtures =
        args->get("fixtures", std::string("tools/lint_fixtures"));
    const std::string parity =
        args->get("parity", fixtures + "/parity.expected");
    return run_self_test(fixtures, parity);
  }

  lint::AnalyzerOptions options;
  options.root = args->get("root", std::string("src"));
  options.check_headers = !args->get("skip-headers", false);
  options.cxx = args->get("cxx", std::string());
  options.threads =
      static_cast<std::size_t>(args->get("threads", std::int64_t{0}));
  const std::string baseline_path = args->get("baseline", std::string());
  if (!baseline_path.empty()) {
    options.baseline_text = read_file_or_empty(baseline_path);
    if (options.baseline_text.empty() && !fs::exists(baseline_path)) {
      std::cerr << "alertsim-analyzer: baseline file '" << baseline_path
                << "' does not exist\n";
      return 2;
    }
  }
  options.exclude_paths = split_csv(args->get("exclude", std::string()));
  options.disabled_rules = split_csv(args->get("disable", std::string()));
  if (!options.disabled_rules.empty()) {
    std::set<std::string> known;
    for (const lint::RuleInfo& r : lint::rule_catalog(options.config)) {
      known.insert(r.id);
    }
    for (const std::string& id : options.disabled_rules) {
      if (known.count(id) == 0) {
        std::cerr << "alertsim-analyzer: --disable names unknown rule '" << id
                  << "' (see --list-rules)\n";
        return 2;
      }
      // Not a token rule — implemented as the compiler-backed pass.
      if (id == "header-self-sufficiency") options.check_headers = false;
    }
  }
  const std::string diff_base = args->get("diff-base", std::string());
  if (!diff_base.empty()) {
    options.only_paths = changed_paths(diff_base, options.root);
    if (options.only_paths.empty()) {
      std::cerr << "alertsim-analyzer: no changes vs '" << diff_base
                << "' under " << options.root << " — nothing to scan\n";
      return 0;
    }
  }

  const std::string write_baseline =
      args->get("write-baseline", std::string());
  const bool prune_baseline = args->get("prune-baseline", false);
  const bool show_stats = args->get("stats", false);
  const std::string stats_out = args->get("stats-out", std::string());
  const std::string lock_graph_dot =
      args->get("lock-graph-dot", std::string());
  if (prune_baseline && baseline_path.empty()) {
    std::cerr << "alertsim-analyzer: --prune-baseline needs --baseline\n";
    return 2;
  }
  if (prune_baseline && !diff_base.empty()) {
    // A diff-filtered scan leaves most entries legitimately idle; pruning
    // from it would delete the whole baseline.
    std::cerr << "alertsim-analyzer: --prune-baseline requires a full scan "
                 "(drop --diff-base)\n";
    return 2;
  }
  const std::string format = args->get("format", std::string("text"));
  const std::string output = args->get("output", std::string());
  const std::string sarif_out = args->get("sarif-out", std::string());
  if (format != "text" && format != "json" && format != "sarif") {
    std::cerr << "alertsim-analyzer: unknown --format '" << format << "'\n";
    return 2;
  }
  for (const std::string& key : args->unused()) {
    std::cerr << "alertsim-analyzer: unknown flag --" << key << '\n';
    return 2;
  }
  if (!fs::is_directory(options.root)) {
    std::cerr << "alertsim-analyzer: root '" << options.root
              << "' is not a directory\n";
    return 2;
  }

  const lint::AnalyzeResult result = lint::analyze(options);
  for (const std::string& e : result.baseline_errors) {
    std::cerr << "alertsim-analyzer: baseline " << e << '\n';
  }

  if (!lock_graph_dot.empty()) {
    std::ofstream dot(lock_graph_dot);
    dot << result.lock_graph_dot;
    std::cerr << "alertsim-analyzer: wrote lock-order graph to "
              << lock_graph_dot << '\n';
  }
  if (show_stats) write_stats(std::cerr, result.rule_stats, false);
  if (!stats_out.empty()) {
    std::ofstream stats_file(stats_out);
    write_stats(stats_file, result.rule_stats, true);
  }

  if (prune_baseline) {
    const std::size_t dropped = result.report.stale_baseline.size();
    std::ofstream pruned(baseline_path);
    pruned << result.pruned_baseline_text;
    std::cerr << "alertsim-analyzer: pruned " << dropped << " stale entr"
              << (dropped == 1 ? "y" : "ies") << " from " << baseline_path
              << '\n';
  }

  if (!write_baseline.empty()) {
    std::map<std::string, const lint::FileData*> by_path;
    for (const lint::FileData& f : result.files) by_path[f.rel_path] = &f;
    std::vector<std::string_view> lines;
    for (const lint::Finding& f : result.report.findings) {
      const auto it = by_path.find(f.path);
      lines.push_back(it == by_path.end()
                          ? std::string_view()
                          : lint::source_line_text(it->second->source,
                                                   f.line));
    }
    std::ofstream out(write_baseline);
    out << lint::Baseline::render(result.report.findings, lines);
    std::cerr << "alertsim-analyzer: wrote " << result.report.findings.size()
              << " baseline entr"
              << (result.report.findings.size() == 1 ? "y" : "ies")
              << " to " << write_baseline << '\n';
    return 0;
  }

  std::ostream* out = &std::cout;
  std::ofstream file_out;
  if (!output.empty()) {
    file_out.open(output);
    out = &file_out;
  }
  const std::vector<lint::RuleInfo> catalog =
      lint::rule_catalog(options.config);
  if (format == "json") {
    lint::write_json(*out, result.report);
  } else if (format == "sarif") {
    lint::write_sarif(*out, result.report, catalog);
  } else {
    lint::write_text(*out, result.report);
  }
  if (!sarif_out.empty()) {
    std::ofstream sarif_file(sarif_out);
    lint::write_sarif(sarif_file, result.report, catalog);
  }

  const bool failed = result.report.error_count() > 0 ||
                      (!prune_baseline &&
                       !result.report.stale_baseline.empty()) ||
                      !result.baseline_errors.empty();
  return failed ? 1 : 0;
}
