// SARIF golden-file fixture: two deliberate findings (a mutable global and
// a raw rand() call) whose SARIF 2.1.0 rendering is pinned byte-for-byte by
// the lint.sarif_golden ctest entry. Kept outside lint_fixtures/ so the
// self-test's EXPECT bookkeeping never couples to the golden file. If the
// SARIF writer changes shape intentionally, regenerate expected.sarif with:
//   alertsim-analyzer --root tools/sarif_fixture --skip-headers \
//       --format sarif --output tools/sarif_fixture/expected.sarif

int g_counter = 0;

int draw() { return rand() % 7; }
