#!/usr/bin/env bash
# Campaign crash-safe-resume smoke test (wired into CI as campaign-smoke).
#
# Runs a small 2-point sweep three ways and proves the resume guarantee:
#   1. uninterrupted, into its own result cache  -> reference manifest
#   2. same spec in a fresh cache, killed mid-run (SIGKILL, no cleanup)
#   3. resumed from the half-written cache + journal of (2)
# The resumed manifest must validate against alertsim-run-manifest/1 and
# carry the same determinism digests, series and metrics as the reference —
# only the wall-clock self-profile may differ between live runs.
#
# Usage: tools/campaign_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}
BIN="$BUILD_DIR/tools/alertsim-campaign"
[ -x "$BIN" ] || { echo "campaign smoke: $BIN not built" >&2; exit 1; }

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

cat > "$WORK/spec.json" <<'EOF'
{
  "schema": "alertsim-campaign-spec/1",
  "name": "smoke_sweep",
  "title": "campaign smoke: delivery vs speed",
  "y_metric": "delivery_rate",
  "reps": 2,
  "base": {"node_count": 100, "duration_s": 120, "flow_count": 6},
  "x": {"param": "speed_mps", "values": [2, 4]}
}
EOF
run() {  # run <cache-dir> <out-dir> [extra flags...]
  local cache="$1" out="$2"; shift 2
  "$BIN" --spec "$WORK/spec.json" --reps 2 --threads 2 \
    --cache-dir "$cache" --out-dir "$out" "$@"
}

echo "campaign smoke: reference run"
run "$WORK/cache-ref" "$WORK/ref" > "$WORK/ref.log"

echo "campaign smoke: interrupted run"
# One worker so units complete one at a time; SIGKILL as soon as the journal
# records the first one, which leaves the campaign genuinely half-done.
"$BIN" --spec "$WORK/spec.json" --reps 2 --threads 1 \
  --cache-dir "$WORK/cache-resume" --out-dir "$WORK/interrupted" \
  > "$WORK/interrupted.log" &
pid=$!
for _ in $(seq 300); do
  grep -q '^done ' "$WORK"/cache-resume/journal/*.journal 2>/dev/null && break
  sleep 0.1
done
kill -9 "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
done_units=$(cat "$WORK"/cache-resume/journal/*.journal 2>/dev/null \
  | grep -c '^done ' || true)
echo "campaign smoke: killed with ${done_units:-0} of 4 units journalled"
[ "${done_units:-0}" -lt 4 ] || {
  echo "campaign smoke: warning — campaign finished before the kill" >&2; }

echo "campaign smoke: resume"
run "$WORK/cache-resume" "$WORK/resumed" --log-level=info \
  > "$WORK/resumed.log" 2> "$WORK/resumed.err"
grep 'campaign smoke_sweep: 4 units' "$WORK/resumed.err"

python3 tools/check_manifest.py "$WORK/resumed/smoke_sweep.json"

python3 - "$WORK/ref/smoke_sweep.json" "$WORK/resumed/smoke_sweep.json" <<'EOF'
import json, sys
ref, resumed = (json.load(open(p)) for p in sys.argv[1:3])
for key in ("trace_digests", "series", "metrics", "params", "seed",
            "replications", "notes"):
    assert ref[key] == resumed[key], f"{key} diverged after resume"
print("campaign smoke: resumed manifest matches the uninterrupted run")
EOF
echo "campaign smoke: OK"
