#!/usr/bin/env bash
# Fault-injection determinism smoke test (wired into CI as fault-smoke).
#
# Runs both fault ablations (channel-loss sweep + churn-MTTF sweep, each
# with ARQ on/off curves) twice back-to-back at 2 replications per point
# and proves the robustness layer's core guarantees:
#   1. same-seed runs under active fault injection are byte-reproducible:
#      the determinism digests of the two runs are identical;
#   2. both manifests validate against alertsim-run-manifest/1;
#   3. on the loss sweep, delivery degrades monotonically with the loss
#      rate on every ARQ-off curve, and the matching ARQ-on curve
#      dominates it at every point.
# No cache dir is passed, so the second run genuinely re-executes. CI runs
# this under ASan, so the fault/ARQ code paths are also leak/UB-checked.
#
# Usage: tools/fault_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${1:-build}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK"' EXIT

for fig in ablation_loss_arq ablation_churn_arq; do
  BIN="$BUILD_DIR/bench/$fig"
  [ -x "$BIN" ] || { echo "fault smoke: $BIN not built" >&2; exit 1; }
  echo "fault smoke: $fig — two independent runs"
  "$BIN" --reps=2 --threads=2 --metrics-out="$WORK/$fig.1.json" \
    > "$WORK/$fig.1.log"
  "$BIN" --reps=2 --threads=2 --metrics-out="$WORK/$fig.2.json" \
    > "$WORK/$fig.2.log"
  python3 tools/check_manifest.py "$WORK/$fig.1.json"

  python3 - "$WORK/$fig.1.json" "$WORK/$fig.2.json" <<'EOF'
import json, sys
a, b = (json.load(open(p)) for p in sys.argv[1:3])
for key in ("trace_digests", "series", "metrics"):
    assert a[key] == b[key], \
        f"{key} diverged between identical fault-injection runs"
print(f"fault smoke: {a['name']}: {len(a['trace_digests'])} determinism "
      "digests stable across reruns")
EOF
done

python3 - "$WORK/ablation_loss_arq.1.json" <<'EOF'
import json, sys
m = json.load(open(sys.argv[1]))
series = {s["name"]: [(p["x"], p["y"]) for p in s["points"]]
          for s in m["series"]}
for proto in ("ALERT", "GPSR"):
    off = series[f"{proto} (no ARQ)"]
    on = series[f"{proto} (ARQ)"]
    ys = [y for _, y in off]
    assert ys == sorted(ys, reverse=True), \
        f"{proto} ARQ-off delivery not monotone in loss rate: {ys}"
    for (x, y_off), (_, y_on) in zip(off, on):
        assert y_on >= y_off, \
            f"{proto} ARQ-on ({y_on}) below ARQ-off ({y_off}) at loss {x}"
    print(f"fault smoke: {proto}: delivery monotone in loss, "
          "ARQ-on dominates ARQ-off")
EOF
echo "fault smoke: OK"
