// alertsim-perf: the pinned benchmark driver behind the committed
// BENCH_core.json / BENCH_campaign.json baselines and the CI perf-gate
// (docs/BENCHMARKS.md). Three modes:
//
//   --run              measure one suite (or all) and write the reports
//   --check BASELINE   measure the baseline's suite fresh (or read
//                      --current FILE) and gate it against the baseline
//                      with each metric's committed tolerance, widened by
//                      --scale on noisy runners
//   --update-baseline  re-measure and overwrite the repo-root baselines
//
// Exit codes: 0 = pass, 1 = regression or missing metric, 2 = usage /
// schema / I/O error. --self-check runs the whole pipeline at smoke scale
// and proves the gate trips on an injected regression (ctest perf.driver_
// selfcheck and the CI perf-gate self-test both call it).
//
// Usage:
//   alertsim-perf --list
//   alertsim-perf --run [--suite core|campaign|scale|lint|all] [--out-dir DIR]
//   alertsim-perf --check BENCH_core.json [--scale 2.0] [--current FILE]
//   alertsim-perf --update-baseline [--suite all] [--out-dir .]
//   alertsim-perf --self-check [--work-dir DIR]
//   Shared: [--smoke] [--repeats N] [--log-level L]

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "perf/compare.hpp"
#include "perf/report.hpp"
#include "perf/suite.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

namespace fs = std::filesystem;
using namespace alert;

int usage(const char* msg) {
  if (msg != nullptr) std::fprintf(stderr, "alertsim-perf: %s\n", msg);
  std::fprintf(
      stderr,
      "usage: alertsim-perf (--list | --run | --check BASELINE |\n"
      "                      --update-baseline | --self-check)\n"
      "       [--suite core|campaign|scale|lint|all] [--out-dir DIR] [--current FILE]\n"
      "       [--scale X] [--smoke] [--repeats N] [--work-dir DIR]\n"
      "       [--log-level L]\n");
  return 2;
}

std::vector<std::string> resolve_suites(const std::string& suite,
                                        std::string* error) {
  if (suite == "all") return perf::suite_names();
  for (const std::string& name : perf::suite_names()) {
    if (name == suite) return {name};
  }
  *error = "unknown suite '" + suite + "' (see --list)";
  return {};
}

std::optional<perf::BenchReport> measure_suite(const std::string& suite,
                                               const perf::SuiteOptions& opts) {
  std::fprintf(stderr, "alertsim-perf: measuring suite '%s'%s...\n",
               suite.c_str(), opts.smoke ? " (smoke scale)" : "");
  return perf::run_suite(suite, opts);
}

/// Print the gate table and return the gate exit code (0 pass, 1 fail).
int render_gate(const std::string& suite, const perf::ComparisonReport& cmp) {
  std::printf("suite '%s': %s\n%s", suite.c_str(),
              cmp.passed() ? "PASS" : "FAIL", cmp.render().c_str());
  std::printf(
      "  %zu ok, %zu improved, %zu regressed, %zu missing, %zu new\n",
      cmp.count(perf::Verdict::Ok), cmp.count(perf::Verdict::Improved),
      cmp.count(perf::Verdict::Regressed),
      cmp.count(perf::Verdict::MissingInCurrent),
      cmp.count(perf::Verdict::NewInCurrent));
  return cmp.passed() ? 0 : 1;
}

int run_mode(const std::vector<std::string>& suites, const std::string& out_dir,
             const perf::SuiteOptions& opts) {
  std::error_code ec;
  fs::create_directories(out_dir, ec);
  for (const std::string& suite : suites) {
    const auto report = measure_suite(suite, opts);
    if (!report) return usage(("suite '" + suite + "' failed").c_str());
    const std::string path =
        (fs::path(out_dir) / perf::baseline_filename(suite)).string();
    if (!report->write_file(path)) {
      std::fprintf(stderr, "alertsim-perf: cannot write %s\n", path.c_str());
      return 2;
    }
    std::printf("wrote %s (%zu metrics, version %s)\n", path.c_str(),
                report->metrics.size(), report->version.c_str());
  }
  return 0;
}

int check_mode(const std::string& baseline_path, const std::string& current,
               const perf::SuiteOptions& opts,
               const perf::CompareOptions& compare) {
  std::string error;
  const auto baseline = perf::load_report_file(baseline_path, &error);
  if (!baseline) {
    std::fprintf(stderr, "alertsim-perf: bad baseline %s: %s\n",
                 baseline_path.c_str(), error.c_str());
    return 2;
  }
  std::optional<perf::BenchReport> measured;
  if (current.empty()) {
    measured = measure_suite(baseline->suite, opts);
    if (!measured) {
      return usage(("baseline names unknown suite '" + baseline->suite +
                    "'").c_str());
    }
  } else {
    measured = perf::load_report_file(current, &error);
    if (!measured) {
      std::fprintf(stderr, "alertsim-perf: bad current %s: %s\n",
                   current.c_str(), error.c_str());
      return 2;
    }
    if (measured->suite != baseline->suite) {
      std::fprintf(stderr,
                   "alertsim-perf: suite mismatch: baseline '%s' vs current "
                   "'%s'\n",
                   baseline->suite.c_str(), measured->suite.c_str());
      return 2;
    }
  }
  return render_gate(baseline->suite,
                     perf::compare_reports(*baseline, *measured, compare));
}

/// End-to-end smoke proof that the pipeline and the gate work: a smoke-scale
/// core run must pass against itself, a x10 perturbation of one metric per
/// direction must fail, and a dropped metric must fail. Exits 0 only when
/// every leg behaves.
int self_check(const std::string& work_dir) {
  perf::SuiteOptions opts;
  opts.smoke = true;
  opts.work_dir = work_dir;

  const auto report = measure_suite("core", opts);
  if (!report) return usage("self-check: core suite failed");

  // Round-trip through the on-disk schema so the serializer is covered too.
  const fs::path dir =
      work_dir.empty() ? fs::temp_directory_path() / "alertsim-perf-selfcheck"
                       : fs::path(work_dir);
  std::error_code ec;
  fs::create_directories(dir, ec);
  const std::string path = (dir / "selfcheck_core.json").string();
  if (!report->write_file(path)) {
    std::fprintf(stderr, "alertsim-perf: self-check cannot write %s\n",
                 path.c_str());
    return 2;
  }
  std::string error;
  const auto loaded = perf::load_report_file(path, &error);
  fs::remove_all(dir, ec);
  if (!loaded) {
    std::fprintf(stderr, "alertsim-perf: self-check round-trip failed: %s\n",
                 error.c_str());
    return 1;
  }

  const perf::CompareOptions compare;
  int failures = 0;
  const auto expect = [&failures](const char* leg, bool got, bool want) {
    const bool ok = got == want;
    std::printf("self-check: %-28s %s\n", leg, ok ? "ok" : "FAILED");
    if (!ok) ++failures;
  };

  expect("identity passes",
         perf::compare_reports(*loaded, *report, compare).passed(), true);

  perf::BenchReport slow = *report;  // lower-is-better metric regresses
  for (perf::BenchMetric& m : slow.metrics) {
    if (m.name == "ns_per_event_dispatch") m.value *= 10.0;
  }
  expect("x10 slowdown trips gate",
         perf::compare_reports(*loaded, slow, compare).passed(), false);

  perf::BenchReport starved = *report;  // higher-is-better metric regresses
  for (perf::BenchMetric& m : starved.metrics) {
    if (m.name == "events_per_s") m.value /= 10.0;
  }
  expect("x10 throughput drop trips",
         perf::compare_reports(*loaded, starved, compare).passed(), false);

  perf::BenchReport dropped = *report;  // a silently dropped bench fails
  std::erase_if(dropped.metrics, [](const perf::BenchMetric& m) {
    return m.name == "ns_per_neighbour_query";
  });
  expect("dropped metric trips gate",
         perf::compare_reports(*loaded, dropped, compare).passed(), false);

  expect("rejects malformed schema",
         perf::load_report("{\"schema\":\"nonsense/9\"}").has_value(), false);

  std::printf("self-check: %s\n", failures == 0 ? "PASS" : "FAIL");
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto args = util::CliArgs::parse(argc, argv, &error);
  if (!args) return usage(error.c_str());

  const bool list = args->get("list", false);
  const bool run = args->get("run", false);
  const bool update = args->get("update-baseline", false);
  const bool selfcheck = args->get("self-check", false);
  const std::string check = args->get("check", std::string());
  const std::string suite = args->get("suite", std::string("all"));
  const std::string out_dir =
      args->get("out-dir", std::string(update ? "." : "perf-out"));
  const std::string current = args->get("current", std::string());
  const std::string log_level = args->get("log-level", std::string("none"));

  perf::SuiteOptions opts;
  opts.smoke = args->get("smoke", false);
  const std::int64_t repeats = args->get("repeats", std::int64_t{0});
  opts.work_dir = args->get("work-dir", std::string());

  perf::CompareOptions compare;
  compare.tolerance_scale = args->get("scale", 1.0);

  for (const auto& key : args->unused()) {
    return usage(("unknown flag --" + key).c_str());
  }
  if (const auto level = util::parse_log_level(log_level)) {
    util::set_log_level(*level);
  } else {
    return usage(("bad --log-level=" + log_level).c_str());
  }
  if (repeats < 0) return usage("--repeats must be >= 0");
  opts.repeats = static_cast<std::size_t>(repeats);
  if (compare.tolerance_scale <= 0.0) return usage("--scale must be > 0");

  const int modes = static_cast<int>(list) + static_cast<int>(run) +
                    static_cast<int>(update) + static_cast<int>(selfcheck) +
                    static_cast<int>(!check.empty());
  if (modes != 1) {
    return usage("pick exactly one of --list / --run / --check / "
                 "--update-baseline / --self-check");
  }

  if (list) {
    for (const std::string& name : perf::suite_names()) {
      std::printf("%s  -> %s\n", name.c_str(),
                  perf::baseline_filename(name).c_str());
    }
    return 0;
  }
  if (selfcheck) return self_check(opts.work_dir);
  if (!check.empty()) return check_mode(check, current, opts, compare);

  std::vector<std::string> suites = resolve_suites(suite, &error);
  if (suites.empty()) return usage(error.c_str());
  return run_mode(suites, out_dir, opts);
}
