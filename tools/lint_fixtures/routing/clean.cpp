// Fixture: idiomatic alertsim code — zero findings expected. Exercises the
// patterns closest to each rule's false-positive edge: seeded Rng use,
// sim::Time arithmetic, doubles, erase-before/after-loop, digit separators.
#include <cstdint>
#include <vector>

namespace fake {
struct Rng {
  std::uint64_t next() { return state_ += 0x9e3779b97f4a7c15ULL; }
  std::uint64_t state_ = 100'000'000;  // digit separators, not char literals
};
}  // namespace fake

double simulated_latency(double now, double then) { return now - then; }

void erase_outside_loop(std::vector<int>& v) {
  int victim = -1;
  for (const int& e : v) {
    if (e < 0) victim = e;  // remember, mutate after the loop
  }
  if (victim != -1) v.erase(v.begin());
  v.push_back(victim);
}
