// Fixture: exhaustive-enum — the tag generalizes the DropReason rule to
// any enum. The complete switch passes; the defaulted switch and the
// missing-case switch are flagged; the waived switch passes; the drifted
// re-declaration is flagged against the first declaration.
// EXPECT: exhaustive-enum 3

// alert-lint: exhaustive-enum
enum class PhaseStub { Greedy, Fallback, Deliver };

int complete_ok(PhaseStub p) {
  switch (p) {
    case PhaseStub::Greedy: return 1;
    case PhaseStub::Fallback: return 2;
    case PhaseStub::Deliver: return 3;
  }
  return 0;
}

int defaulted_bad(PhaseStub p) {
  switch (p) {
    case PhaseStub::Greedy: return 1;
    case PhaseStub::Fallback: return 2;
    case PhaseStub::Deliver: return 3;
    default: return 0;
  }
}

int missing_bad(PhaseStub p) {
  switch (p) {
    case PhaseStub::Greedy: return 1;
    case PhaseStub::Fallback: return 2;
  }
  return 0;
}

int missing_waived(PhaseStub p) {
  switch (p) {  // alert-lint: allow(exhaustive-enum)
    case PhaseStub::Greedy: return 1;
  }
  return 0;
}

namespace drifted {
// alert-lint: exhaustive-enum
enum class PhaseStub { Greedy, Fallback };
}  // namespace drifted
