// Fixture: pointer-ordering — address-keyed containers and sorts vary run
// to run under ASLR. Three positives (set key, map key, default-comparator
// sort); the comparator-equipped variants and the waived line pass.
// EXPECT: pointer-ordering 3
#include <algorithm>
#include <map>
#include <set>
#include <vector>

struct NodeStub {
  int id;
};
struct ByIdStub {
  bool operator()(const NodeStub* a, const NodeStub* b) const {
    return a->id < b->id;
  }
};

int pointer_ordering_fixture() {
  std::set<NodeStub*> bad_set;
  std::map<NodeStub*, int> bad_map;
  std::set<NodeStub*, ByIdStub> good_set;
  std::vector<NodeStub*> nodes;
  std::sort(nodes.begin(), nodes.end());
  std::sort(nodes.begin(), nodes.end(), ByIdStub{});
  std::set<NodeStub*> waived_set;  // alert-lint: allow(pointer-ordering)
  return static_cast<int>(bad_set.size() + bad_map.size() +
                          good_set.size() + waived_set.size());
}
