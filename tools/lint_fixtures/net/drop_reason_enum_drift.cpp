// Fixture: a DropReason declaration that drifted from alert-lint's
// canonical DROP_REASONS list is itself a violation — adding a reason
// means updating the linter and every switch together. The forward
// declaration must not confuse the definition matcher.
// EXPECT: drop-reason-exhaustive 1
namespace net {
enum class DropReason : unsigned char;  // forward decl: ignored

enum class DropReason : unsigned char {
  OutOfRange,
  NoHandler,
  TtlExpired,
};
}  // namespace net
