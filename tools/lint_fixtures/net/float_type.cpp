// Fixture: float in a position/latency directory (net/). Two lines
// flagged (one report per line); the waived one and identifiers merely
// containing "float" pass.
// EXPECT: float-type 2
float bad_latency = 0.0f;
struct BadPos { float x; float y; };

float waived_ok = 1.0f;  // alert-lint: allow(float-type)

// "float" inside words must not match:
int floatify_count = 0;
int a_float_free_zone(double not_a_float) { return static_cast<int>(not_a_float); }

// The three TU-scope mutable variables above are also mutable-global
// findings — the rules compose on the same lines.
// EXPECT: mutable-global 3
