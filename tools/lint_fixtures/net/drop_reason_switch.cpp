// Fixture: switches over net::DropReason must be exhaustive and
// default-free. The first switch is complete (clean); the second misses
// the three fault-era reasons; the third hides a full case list behind
// `default:`; the waived one and the DropReason-free switch pass.
// EXPECT: drop-reason-exhaustive 2
namespace net {
enum class DropReason {
  OutOfRange,
  NoHandler,
  TtlExpired,
  ChannelLoss,
  NodeDown,
  RetryExhausted,
};
}  // namespace net

const char* full(net::DropReason why) {
  switch (why) {
    case net::DropReason::OutOfRange: return "out_of_range";
    case net::DropReason::NoHandler: return "no_handler";
    case net::DropReason::TtlExpired: return "ttl_expired";
    case net::DropReason::ChannelLoss: return "channel_loss";
    case net::DropReason::NodeDown: return "node_down";
    case net::DropReason::RetryExhausted: return "retry_exhausted";
  }
  return "unknown";
}

const char* stale(net::DropReason why) {
  switch (why) {  // misses the three fault-era reasons -> one violation
    case net::DropReason::OutOfRange: return "out_of_range";
    case net::DropReason::NoHandler: return "no_handler";
    case net::DropReason::TtlExpired: return "ttl_expired";
  }
  return "unknown";
}

const char* hidden(net::DropReason why) {
  switch (why) {  // `default:` would swallow reason #7 -> one violation
    case net::DropReason::OutOfRange: return "out_of_range";
    case net::DropReason::NoHandler: return "no_handler";
    case net::DropReason::TtlExpired: return "ttl_expired";
    case net::DropReason::ChannelLoss: return "channel_loss";
    case net::DropReason::NodeDown: return "node_down";
    case net::DropReason::RetryExhausted: return "retry_exhausted";
    default: return "unknown";
  }
}

const char* waived(net::DropReason why) {
  switch (why) {  // alert-lint: allow(drop-reason-exhaustive)
    case net::DropReason::OutOfRange: return "out_of_range";
    default: return "unknown";
  }
}

int no_drop_reason_cases(int v) {
  switch (v) {
    default: return 0;
  }
}
