// Fixture: sim-state-confinement — a ThreadPool worker task reaching a
// by-ref-captured Network and a member EventQueue (both flagged), while
// the Simulator dispatch call, a by-value Network copy and a task-local
// Network stay silent.
// EXPECT: sim-state-confinement 2
namespace alert::core {

class CampaignRunner {
 public:
  void fan_out(ThreadPool& pool, Network& shared_net, Simulator& sim) {
    pool.parallel_for(4, [&](int i) {
      shared_net.mark_dirty(i);  // flagged: shared Network from a worker
      queue_.bump(i);            // flagged: member queue from a worker
      sim.schedule_in(i, i);     // fine: the dispatch context marshals it
    });
  }

  void confined(ThreadPool& pool, Network& shared_net) {
    pool.parallel_for(4, [shared_net](int i) mutable {
      shared_net.mark_dirty(i);  // fine: operates on its own copy
    });
    pool.submit([]() {
      Network scratch;
      scratch.mark_dirty(0);  // fine: confined to the task
    });
  }

 private:
  EventQueue queue_;
};

}  // namespace alert::core
