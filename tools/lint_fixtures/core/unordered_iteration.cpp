// Fixture: unordered-iteration-ordering — core/ feeds canonical/digest
// output, so iterating hash containers there is flagged. Two positives
// (range-for and explicit .begin()); the ordered map, the waived loop and
// membership lookups all pass.
// EXPECT: unordered-iteration-ordering 2
#include <map>
#include <unordered_map>
#include <unordered_set>

int sum_unordered_fixture() {
  std::unordered_map<int, int> counts;
  std::unordered_set<int> seen;
  std::map<int, int> ordered;
  int total = 0;
  for (const auto& [k, v] : counts) total += v;
  auto it = seen.begin();
  for (const auto& [k, v] : ordered) total += v;
  for (const auto& [k, v] : counts) total += v;  // alert-lint: allow(unordered-iteration-ordering)
  total += static_cast<int>(seen.count(3));
  (void)it;
  return total;
}
