// Fixture: use-after-move — a straight-line use after std::move and a
// loop-carried double-move (the second iteration moves from an already
// moved-from variable). The negatives pin the dataflow edges: reassignment
// kills the fact, a moved-then-returned variable is dead on the other
// branch, and a range-for loop variable rebinds every iteration.
// EXPECT: use-after-move 2
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace alert::core {

std::string consume(std::string label) {
  std::string stored = std::move(label);
  return stored + label;  // flagged: label is moved-from here
}

void drain(std::vector<std::string>& out, std::string seed) {
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::move(seed);  // flagged: moved again on iteration two
  }
}

std::string reset_between(std::string a, std::string b) {
  std::string keep = std::move(a);
  a = std::move(b);  // reassignment: a is live again
  keep += a;         // fine
  return keep;
}

std::string branch_safe(bool flip, std::string s) {
  if (flip) {
    return std::move(s);  // this path leaves the function immediately
  }
  return s;  // fine: not moved on this path
}

void rebind(std::vector<std::string> items, std::vector<std::string>& sink) {
  for (std::string& item : items) {
    sink.push_back(std::move(item));  // fine: item rebinds each iteration
  }
}

}  // namespace alert::core
