// Fixture: lock-discipline — an accumulator written from a ThreadPool
// worker task and again outside it with no common mutex (flagged at the
// worker write), next to a twin that guards every write with the same
// lock and stays silent.
// EXPECT: lock-discipline 1
#include <mutex>

namespace alert::core {

int unguarded_total(ThreadPool& pool) {
  int grand = 0;
  pool.parallel_for(8, [&grand](int i) {
    grand += i;  // flagged: worker write, no guard
  });
  grand += 1;  // second unguarded write of the same name
  return grand;
}

int guarded_total(ThreadPool& pool) {
  std::mutex m;
  int total = 0;
  pool.parallel_for(8, [&](int i) {
    std::lock_guard<std::mutex> hold(m);
    total += i;  // fine: same mutex held at every write
  });
  std::lock_guard<std::mutex> hold(m);
  total += 1;
  return total;
}

}  // namespace alert::core
