// Fixture: wallclock-in-sim, direct form. core/ is simulated-time but
// outside the legacy wall-clock rule's dirs (sim/, net/, routing/), so
// the direct host-clock read here is this rule's to report.
// EXPECT: wallclock-in-sim 1
#include <chrono>

namespace alert::core {

long checkpoint_stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace alert::core
