// Fixture for the raw-stdout rule: direct stdout writes outside
// util/logging and the obs/ sinks are violations; stderr diagnostics,
// string-buffer formatting, and owned-FILE* writes are not.
// EXPECT: raw-stdout 5

#include <cstdio>
#include <iostream>

void bad() {
  std::cout << "progress\n";
  printf("done\n");
  std::printf("pct=%d\n", 3);
  puts("hello");
  std::fprintf(stdout, "row\n");
}

void fine(std::FILE* own) {
  std::fprintf(stderr, "warn\n");
  std::fprintf(own, "record\n");
  char buf[32];
  std::snprintf(buf, sizeof buf, "x");
  std::printf("waived\n");  // alert-lint: allow(raw-stdout)
}
