// Fixture: a host-clock read inside obs/ — the allowlisted profiling
// layer. Neither this file nor simulated-time callers of
// profile_probe_sample() may be flagged: obs clock reads never feed
// digests, so they are not wallclock-in-sim sources.
#include <chrono>

namespace alert::obs {

long profile_probe_sample() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace alert::obs
