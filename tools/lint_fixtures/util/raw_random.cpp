// Fixture: every banned randomness source, outside util/rng — each line
// must be flagged. A line-level waiver must silence the rule.
// EXPECT: raw-random 4
#include <cstdlib>
#include <random>

int bad_c_rand() { return rand(); }
void bad_c_srand() { srand(42); }
int bad_device() { return static_cast<int>(std::random_device{}()); }
std::mt19937 bad_engine;

// Waived line — must NOT count:
std::mt19937 waived_engine;  // alert-lint: allow(raw-random)

// Mentions in comments must not count: rand(), std::random_device.
const char* not_code = "srand(1); std::mt19937 in a string";

// The two TU-scope engines above are also mutable-global findings (the
// raw-random waiver on one of them does not silence the other rule).
// EXPECT: mutable-global 2
