// Fixture: a host-clock read outside both the exempt obs/ paths and the
// simulated-time dirs. No finding in this file — util/ may measure host
// time — but sim/wallclock_transitive.cpp reaches host_timer_sample()
// through a call and must be flagged over there.
#include <chrono>

namespace alert::util {

long host_timer_sample() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace alert::util
