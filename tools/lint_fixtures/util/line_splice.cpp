// Fixture: backslash line-splices. The first comment continues across
// the splice, so the rand()/srand() on the next physical line are
// comment text, not code — raw-random must stay silent. The spliced
// string literal stays one token. The mutable global after both is the
// file's only finding, and the analyzer_test pins its physical line to
// prove the splices did not shift the line mapping.
// EXPECT: mutable-global 1

// this comment splices onto the next physical line \
rand(); srand(time(nullptr));

const char* spliced_text = "split \
across physical lines";

int mutable_counter = 0;  // line 15: the one real finding here
