﻿#include "net/mac.hpp"
// Fixture: UTF-8 BOM — the byte-order mark precedes the #include on line
// 1. The lexer must skip it so the directive still lexes as a Preprocessor
// token; the module-layering finding below only fires when it does (util
// may not include net), which pins the regression.
// EXPECT: module-layering 1
