// Fixture: lock-order-cycle — two member mutexes acquired in opposite
// orders by two methods of the same class (a classic AB/BA deadlock),
// next to a twin class that takes its pair in one global order everywhere
// and stays silent.
// EXPECT: lock-order-cycle 1
#include <mutex>

namespace alert::util {

class PairLedger {
 public:
  void credit() {
    std::lock_guard<std::mutex> hold_a(accounts_);
    std::lock_guard<std::mutex> hold_b(audit_);  // accounts_ -> audit_
    ++balance_;
  }
  void reconcile() {
    std::lock_guard<std::mutex> hold_b(audit_);
    std::lock_guard<std::mutex> hold_a(accounts_);  // audit_ -> accounts_
    ++balance_;
  }

 private:
  std::mutex accounts_;
  std::mutex audit_;
  long balance_ = 0;
};

class OrderedLedger {
 public:
  void credit() {
    std::lock_guard<std::mutex> hold_a(first_);
    std::lock_guard<std::mutex> hold_b(second_);  // first_ -> second_
    ++balance_;
  }
  void debit() {
    std::lock_guard<std::mutex> hold_a(first_);
    std::lock_guard<std::mutex> hold_b(second_);  // same order: fine
    --balance_;
  }

 private:
  std::mutex first_;
  std::mutex second_;
  long balance_ = 0;
};

}  // namespace alert::util
