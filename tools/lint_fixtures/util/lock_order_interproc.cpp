// Fixture: lock-order-cycle (interprocedural) — neither function nests two
// guards, but each calls into the other class while holding its own mutex,
// so the call graph closes an AB/BA cycle the intraprocedural view cannot
// see. The witness chain in the finding names both call sites.
// EXPECT: lock-order-cycle 1
#include <mutex>

namespace alert::util {

class RouteTable;

class StatsBoard {
 public:
  void bump() {
    std::lock_guard<std::mutex> hold(board_mu_);
    ++hits_;
  }
  void merge(RouteTable& table);

 private:
  std::mutex board_mu_;
  long hits_ = 0;
};

class RouteTable {
 public:
  void lookup() {
    std::lock_guard<std::mutex> hold(table_mu_);
    ++queries_;
  }
  void refresh(StatsBoard& stats) {
    std::lock_guard<std::mutex> hold(table_mu_);
    stats.bump();  // table_mu_ held -> bump() acquires board_mu_
  }

 private:
  std::mutex table_mu_;
  long queries_ = 0;
};

void StatsBoard::merge(RouteTable& table) {
  std::lock_guard<std::mutex> hold(board_mu_);
  table.lookup();  // board_mu_ held -> lookup() acquires table_mu_: cycle
}

}  // namespace alert::util
