// Fixture: mutable-global — static-storage mutable state outside the
// allowlisted files (util/check.cpp, util/logging.cpp). Four positives:
// namespace scope, nested-namespace scope, function-local static, static
// data member. const/constexpr declarations and the waived line pass.
// EXPECT: mutable-global 4
#include <string>

int g_bad_counter = 0;
const int kGoodConst = 1;
constexpr int kGoodConstexpr = 2;
int g_waived_counter = 0;  // alert-lint: allow(mutable-global)

namespace stub {
std::string g_bad_name;
}  // namespace stub

int bump_fixture() {
  static int calls = 0;
  static const int kLimit = 7;
  return ++calls + kLimit + g_bad_counter + kGoodConst + kGoodConstexpr;
}

struct CounterStub {
  static int live;
  int instance_ok = 0;
};
