// Fixture: module-layering — util/ sits at the bottom of the dependency
// DAG and may not include net/. One flagged back-edge; the waived include
// on the next line must not count.
// EXPECT: module-layering 1
#include "net/packet_stub.hpp"
#include "net/mac_stub.hpp"  // alert-lint: allow(module-layering)

int layering_backedge_fixture() { return 0; }
