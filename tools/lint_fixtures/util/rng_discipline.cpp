// Fixture: rng-discipline — entropy/time seeding and RNG engines shared
// into ThreadPool worker tasks. Four findings: an entropy-constructed
// engine, an entropy reseed, an explicit by-ref capture into submit, and
// a default [&] capture into parallel_for. The config-seeded engine and
// the by-value capture stay silent.
// EXPECT: rng-discipline 4

namespace alert::util {

unsigned entropy_seeded_ctor() {
  Rng rng(static_cast<unsigned>(time(nullptr)));  // flagged: time-seeded
  return rng.next();
}

void entropy_reseed(Rng& rng) {
  rng.seed(static_cast<unsigned>(clock()));  // flagged: clock-seeded
}

unsigned config_seeded(unsigned config_seed) {
  Rng rng(config_seed);  // fine: seed flows from the scenario config
  return rng.next();
}

void worker_shared_explicit(ThreadPool& pool, Rng& rng) {
  pool.submit([&rng] { rng.next(); });  // flagged: by-ref into a worker
}

void worker_shared_default(ThreadPool& pool) {
  Rng task_rng(7);
  pool.parallel_for(4, [&](int i) {  // flagged: default [&] reaches task_rng
    task_rng.discard(i);
  });
}

void worker_forked_copy(ThreadPool& pool, Rng& rng) {
  pool.submit([fork = rng.fork(1)]() mutable { fork.next(); });  // fine
}

}  // namespace alert::util
