#pragma once
// Fixture: the back half of the cycle_a <-> cycle_b include cycle; the
// include below closes the cycle and is the edge that gets reported.
// EXPECT: module-layering 1
#include "sim/cycle_a.hpp"

inline int cycle_b_value() { return 2; }
