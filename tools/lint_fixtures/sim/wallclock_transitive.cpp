// Fixture: wallclock-in-sim, transitive form. measure_step() holds no
// clock token itself (the per-file wall-clock rule stays silent) but
// reaches the host clock in util/host_timer.cpp through a call — flagged
// at the call site. profiled_step() calls the obs probe, whose clock
// reads are allowlisted, and stays silent.
// EXPECT: wallclock-in-sim 1

namespace alert::sim {

long measure_step() {
  return util::host_timer_sample();  // flagged: reaches a host clock read
}

long profiled_step() {
  return obs::profile_probe_sample();  // fine: obs profiling is exempt
}

}  // namespace alert::sim
