// Fixture: fp-accumulation-order — double reductions inside a range-for
// and a while loop (iteration order is not an explicit index program, so
// PDES reassociation would change the digest), next to the sanctioned
// shapes: an index-ordered classic for and an integer accumulation.
// EXPECT: fp-accumulation-order 2
#include <cstddef>
#include <vector>

namespace alert::sim {

double range_for_sum(const std::vector<double>& samples) {
  double total = 0.0;
  for (const double s : samples) {
    total += s;  // flagged: range-for accumulation
  }
  return total;
}

double while_normalize(double angle) {
  while (angle < 0.0) {
    angle += 6.283185307179586;  // flagged: while-loop accumulation
  }
  return angle;
}

double indexed_sum(const std::vector<double>& samples) {
  double total = 0.0;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    total += samples[i];  // fine: order pinned by the index program
  }
  return total;
}

long event_count(const std::vector<int>& hits) {
  long count = 0;
  for (const int h : hits) {
    count += h;  // fine: integer addition is associative
  }
  return count;
}

}  // namespace alert::sim
