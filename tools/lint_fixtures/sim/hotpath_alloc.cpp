// Fixture: hotpath-allocation — Simulator::step (a configured hot-path
// root) reaches dispatch_pending(), whose three allocation kinds are each
// flagged once: a growing-container call, a raw new, and a std::function
// construction. cold_setup() also allocates but nothing on the hot path
// calls it, so it pins the reachability boundary by staying silent.
// EXPECT: hotpath-allocation 3

namespace alert::sim {

class Simulator {
 public:
  void step();
  void cold_setup();

 private:
  void dispatch_pending();
  EventList pending_;
};

void Simulator::step() { dispatch_pending(); }

void Simulator::dispatch_pending() {
  pending_.push_back(next_event());          // flagged: growing container
  auto* scratch = new Event[4];              // flagged: raw new
  std::function<void()> hook = make_hook();  // flagged: std::function
  hook();
  delete[] scratch;
}

void Simulator::cold_setup() {
  pending_.resize(64);  // fine: not reachable from any hot-path root
}

}  // namespace alert::sim
