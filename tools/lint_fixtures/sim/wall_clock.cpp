// Fixture: wall-clock reads inside a simulator directory. Four banned
// forms; the waived one and the comment/string mentions do not count.
// EXPECT: wall-clock 4
#include <chrono>
#include <ctime>

long bad_time() { return time(nullptr); }
long bad_clock() { return clock(); }
auto bad_chrono() { return std::chrono::system_clock::now(); }
auto bad_steady() { return std::chrono::steady_clock::now(); }

auto waived() {
  return std::chrono::system_clock::now();  // alert-lint: allow(wall-clock)
}

// time(nullptr) in a comment is fine; so is "clock()" in a string:
const char* s = "time(nullptr) clock() std::chrono::steady_clock";
