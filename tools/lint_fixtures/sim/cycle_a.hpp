#pragma once
// Fixture: module-layering include-cycle detection. cycle_a and cycle_b
// include each other; the DFS reports the one edge that closes the cycle
// (in cycle_b, the lexically later file), so this file stays clean.
#include "sim/cycle_b.hpp"

inline int cycle_a_value() { return 1; }
