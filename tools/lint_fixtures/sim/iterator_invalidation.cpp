// Fixture: container mutation inside a range-for over the same container —
// the event-loop-callback UB pattern. Two violations; mutating a *different*
// container, or a waived line, is fine.
// EXPECT: iterator-invalidation 2
#include <vector>

struct Queue {
  std::vector<int> events_;
  std::vector<int> done_;

  void bad_erase() {
    for (int& e : events_) {
      if (e < 0) events_.erase(events_.begin());
    }
  }

  void bad_grow() {
    for (const int& e : events_) {
      events_.push_back(e);
    }
  }

  void ok_other_container() {
    for (const int& e : events_) {
      done_.push_back(e);
    }
  }

  void ok_waived() {
    for (const int& e : events_) {
      if (e == 0) {
        events_.clear();  // alert-lint: allow(iterator-invalidation)
        break;
      }
    }
  }
};
