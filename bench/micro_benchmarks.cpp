/// Google-benchmark microbenchmarks for the hot paths of the simulator and
/// crypto substrate: these bound how many replications a figure sweep can
/// afford and catch performance regressions in the engine.

#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "crypto/pubkey.hpp"
#include "crypto/sha1.hpp"
#include "crypto/symmetric.hpp"
#include "obs/profile.hpp"
#include "perf/kernels.hpp"
#include "routing/zone.hpp"
#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

using namespace alert;

void BM_Sha1_512B(benchmark::State& state) {
  std::vector<std::uint8_t> data(512, 0xAB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1::hash(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_Sha1_512B);

void BM_XteaCtr_512B(benchmark::State& state) {
  const auto key = crypto::SymmetricKey::from_seed(1);
  std::vector<std::uint8_t> data(512, 0xCD);
  std::uint64_t nonce = 0;
  for (auto _ : state) {
    crypto::xtea_ctr_apply(key, nonce++, data);
    benchmark::DoNotOptimize(data.data());
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(state.iterations()) * 512);
}
BENCHMARK(BM_XteaCtr_512B);

void BM_RsaEncryptValue(benchmark::State& state) {
  util::Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  std::uint64_t m = 12345;
  for (auto _ : state) {
    m = crypto::rsa_encrypt_value(kp.pub, m % kp.pub.n);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_RsaEncryptValue);

void BM_RsaDecryptValue(benchmark::State& state) {
  util::Rng rng(1);
  const auto kp = crypto::generate_keypair(rng);
  const std::uint64_t c = crypto::rsa_encrypt_value(kp.pub, 12345);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::rsa_decrypt_value(kp.priv, c));
  }
}
BENCHMARK(BM_RsaDecryptValue);

void BM_KeypairGeneration(benchmark::State& state) {
  util::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::generate_keypair(rng));
  }
}
BENCHMARK(BM_KeypairGeneration);

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(3);
  for (auto _ : state) {
    sim::EventQueue q;
    for (std::size_t i = 0; i < n; ++i) {
      q.schedule(rng.uniform(), [] {});
    }
    while (!q.empty()) {
      benchmark::DoNotOptimize(q.pop().time);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(256)->Arg(4096);

/// Event dispatch through the Simulator with no profiler attached — the
/// default path every experiment replication takes. The obs acceptance bar
/// is that this stays within noise of the pre-instrumentation dispatch cost
/// (the ALERT_OBS_TIMED site is a single null check here).
void BM_SimulatorDispatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(static_cast<double>(i) * 1e-6, [&acc] { ++acc; });
    }
    s.run_until(1.0);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorDispatch)->Arg(4096);

/// Same dispatch loop with a Profiler attached: adds two steady_clock reads
/// per event. The delta against BM_SimulatorDispatch is the true cost of
/// enabling wall-clock self-profiling.
void BM_SimulatorDispatchProfiled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Simulator s;
    obs::Profiler profiler;
    s.set_profiler(&profiler);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      s.schedule_at(static_cast<double>(i) * 1e-6, [&acc] { ++acc; });
    }
    s.run_until(1.0);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SimulatorDispatchProfiled)->Arg(4096);

void BM_DestinationZone(benchmark::State& state) {
  const util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  util::Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::destination_zone(field, rng.point_in(field), 5));
  }
}
BENCHMARK(BM_DestinationZone);

void BM_PartitionUntilSeparated(benchmark::State& state) {
  const util::Rect field{0.0, 0.0, 1000.0, 1000.0};
  util::Rng rng(6);
  const util::Rect zd = routing::destination_zone(field, {900.0, 900.0}, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing::partition_until_separated(
        field, rng.point_in(field), zd, util::Axis::Vertical, 5));
  }
}
BENCHMARK(BM_PartitionUntilSeparated);

/// The exact event-dispatch kernel behind BENCH_core.json's
/// ns_per_event_dispatch (src/perf/kernels.hpp): exploring it here with
/// google-benchmark measures the same workload the committed baseline pins,
/// so the two numbers are directly comparable.
void BM_PerfKernelDispatch(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(perf::run_dispatch_batch(n));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_PerfKernelDispatch)->Arg(4096)->Arg(65536);

/// The neighbour-query kernel behind BENCH_core.json's
/// ns_per_neighbour_query: a fixed-seed static topology (the constructor
/// cost stays outside the timed loop) scanned at deterministic centers.
void BM_PerfKernelNeighbourQuery(benchmark::State& state) {
  const perf::QueryTopology topology(
      static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(topology.run_queries(256));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          256);
}
BENCHMARK(BM_PerfKernelNeighbourQuery)->Arg(200)->Arg(2000);

void BM_FullReplication(benchmark::State& state) {
  core::ScenarioConfig cfg;
  cfg.node_count = static_cast<std::size_t>(state.range(0));
  cfg.duration_s = 20.0;
  cfg.flow_count = 5;
  std::uint64_t rep = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::run_once(cfg, rep++));
  }
}
BENCHMARK(BM_FullReplication)->Arg(100)->Arg(200)->Unit(
    benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
