/// Fig. 13a: simulated remaining nodes over time for H in {4, 5} and node
/// speeds {0, 2, 4} m/s. Expected shape: static nodes never leave; faster
/// nodes drain quicker; H = 4 zones (4x larger area) hold more nodes than
/// H = 5 zones at every time.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig13a_speed_partitions",
                    "Fig. 13a", "residency vs speed and partitions");
  const std::size_t reps = fig.reps();

  std::vector<util::Series> series;
  for (const int H : {4, 5}) {
    for (const double v : {0.0, 2.0, 4.0}) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.alert.partitions_h = H;
      cfg.speed_mps = v;
      if (v == 0.0) cfg.mobility = core::MobilityKind::Static;
      cfg.duration_s = 45.0;
      cfg.residency_sample_period_s = 5.0;
      const core::ExperimentResult r = fig.run(cfg);
      util::Series s;
      s.name = "H=" + std::to_string(H) + " v=" +
               std::to_string(static_cast<int>(v));
      for (std::size_t i = 0; i < r.remaining_by_sample.size(); ++i) {
        s.points.push_back(bench::point(
            static_cast<double>(i) * cfg.residency_sample_period_s,
            r.remaining_by_sample[i]));
      }
      series.push_back(std::move(s));
    }
  }
  fig.table(
      "Fig. 13a — remaining nodes: partitions x speed (200 nodes)",
      "time (s)", "remaining nodes", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
