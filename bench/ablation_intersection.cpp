/// Ablation for Sec. 3.3 (Fig. 5's narrative): intersection/frequency
/// attack success against ALERT with the countermeasure OFF vs ON, as the
/// session grows longer. Expected shape: without the countermeasure the
/// attacker's success rises with observation count ("the longer an
/// attacker watches, the easier"); with it, D drops out of recipient sets
/// and success collapses.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "ablation_intersection",
                    "Sec. 3.3 ablation",
                "intersection attack vs countermeasure");
  const std::size_t reps = fig.reps();

  std::vector<util::Series> series;
  for (const bool countermeasure : {false, true}) {
    util::Series freq{std::string("freq-attack success, cm ") +
                          (countermeasure ? "ON" : "OFF"),
                      {}};
    util::Series strict{std::string("strict-intersection P(D), cm ") +
                            (countermeasure ? "ON" : "OFF"),
                        {}};
    for (const double duration : {20.0, 40.0, 60.0, 100.0}) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.duration_s = duration;
      cfg.run_attacks = true;
      cfg.alert.intersection_countermeasure = countermeasure;
      const core::ExperimentResult r = fig.run(cfg);
      freq.points.push_back(
          bench::point(duration, r.intersection_frequency));
      strict.points.push_back(
          bench::point(duration, r.intersection_success));
    }
    series.push_back(std::move(freq));
    series.push_back(std::move(strict));
  }
  fig.table(
      "Sec. 3.3 — intersection attack success vs session length",
      "session (s)", "attack success", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
