// Thin wrapper: the figure's points, series and commentary live in the
// campaign registry (src/campaign/figures.cpp); the engine adds caching,
// parallel scheduling and crash-safe resume on top of the old behaviour.
#include "campaign/figure_main.hpp"

int main(int argc, char** argv) {
  return alert::campaign::figure_main("ablation_loss_arq", argc, argv);
}
