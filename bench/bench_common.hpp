#pragma once

/// Shared runner for the figure-reproduction benches. Every fig*_ binary
/// regenerates one figure of the paper's evaluation (Sec. 4 analysis
/// figures or Sec. 5 simulation figures); bench::Figure gives all of them
/// one output path:
///
///   * the textual series table (one row per x value, one column per curve,
///     values `mean (+/- 95% CI)`) on stdout, exactly as before;
///   * a run manifest — config, seed, git version, per-replication
///     determinism digests, merged metrics snapshot, wall-clock
///     self-profile, result series — as one JSON document via
///     --metrics-out=FILE (schema alertsim-run-manifest/1, validated by
///     tools/check_manifest.py);
///   * a structured per-event trace of the first replication via
///     --trace-out=FILE (.jsonl / .csv / else Chrome trace_event JSON that
///     loads in chrome://tracing and ui.perfetto.dev).
///
/// Replications default to 10 per point; set ALERTSIM_REPS=30 (or pass
/// --reps=30) to match the paper's averaging exactly (3x slower).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "core/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/series.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace alert::bench {

/// The paper's default setup (Sec. 5.2).
inline core::ScenarioConfig default_scenario() {
  core::ScenarioConfig cfg;
  cfg.field = {0.0, 0.0, 1000.0, 1000.0};
  cfg.node_count = 200;
  cfg.speed_mps = 2.0;
  cfg.radio_range_m = 250.0;
  cfg.flow_count = 10;
  cfg.packet_interval_s = 2.0;
  cfg.payload_bytes = 512;
  cfg.duration_s = 100.0;
  cfg.alert.partitions_h = 5;
  cfg.seed = 0xA1E47;
  return cfg;
}

inline util::SeriesPoint point(double x, const util::Accumulator& acc) {
  return {x, acc.mean(), acc.ci95_halfwidth()};
}

/// One figure bench: parses the shared observability flags, runs experiment
/// points through run(), collects series via table(), and emits the
/// manifest in finish(). Typical shape:
///
///   int main(int argc, char** argv) {
///     bench::Figure fig(argc, argv, "fig14a_latency_vs_nodes",
///                       "Fig. 14a", "latency per packet vs nodes");
///     for (...) {
///       core::ScenarioConfig cfg = fig.scenario();
///       ...
///       const core::ExperimentResult r = fig.run(cfg);
///       ...
///     }
///     fig.table("Fig. 14a — latency per packet", "total nodes",
///               "latency (ms)", series);
///     return fig.finish();
///   }
class Figure {
 public:
  Figure(int argc, char** argv, std::string name, const std::string& label,
         const std::string& what, std::size_t fallback_reps = 10) {
    manifest_.name = std::move(name);
    manifest_.title = label + " — " + what;

    std::string error;
    const auto args = util::CliArgs::parse(argc, argv, &error);
    if (!args) {
      std::fprintf(stderr, "%s: %s\n", manifest_.name.c_str(),
                   error.c_str());
      std::exit(2);
    }
    flags_ = util::CommonFlags::from(*args);
    for (const auto& key : args->unused()) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", manifest_.name.c_str(),
                   key.c_str());
      std::exit(2);
    }
    if (const auto level = util::parse_log_level(flags_.log_level)) {
      util::set_log_level(*level);
    } else {
      std::fprintf(stderr, "%s: bad --log-level=%s\n",
                   manifest_.name.c_str(), flags_.log_level.c_str());
      std::exit(2);
    }
    reps_ = flags_.reps > 0 ? static_cast<std::size_t>(flags_.reps)
                            : core::bench_replications(fallback_reps);

    const core::ScenarioConfig defaults = default_scenario();
    manifest_.seed = defaults.seed;
    manifest_.replications = reps_;
    manifest_.add_param("node_count", std::to_string(defaults.node_count));
    manifest_.add_param("speed_mps", std::to_string(defaults.speed_mps));
    manifest_.add_param("radio_range_m",
                        std::to_string(defaults.radio_range_m));
    manifest_.add_param("flow_count", std::to_string(defaults.flow_count));
    manifest_.add_param("packet_interval_s",
                        std::to_string(defaults.packet_interval_s));
    manifest_.add_param("payload_bytes",
                        std::to_string(defaults.payload_bytes));
    manifest_.add_param("duration_s", std::to_string(defaults.duration_s));
    manifest_.add_param("partitions_h",
                        std::to_string(defaults.alert.partitions_h));

    std::printf("# %s\n", manifest_.title.c_str());
    std::printf("# defaults: 1000x1000 m, 200 nodes, 2 m/s, 250 m range, "
                "10 flows, 512 B CBR every 2 s, 100 s, H=5\n");
    std::fflush(stdout);
  }

  /// Paper-default scenario with this run's observability options applied
  /// (benches always self-profile; the cost is two clock reads per scope).
  [[nodiscard]] core::ScenarioConfig scenario() const {
    core::ScenarioConfig cfg = default_scenario();
    cfg.obs.profile = true;
    return cfg;
  }

  [[nodiscard]] std::size_t reps() const { return reps_; }

  /// Run one experiment point and fold its metrics, self-profile and
  /// determinism digests into the manifest. The structured trace sink is
  /// attached only to the first run() (one file holds one replication's
  /// events, not every point of a sweep interleaved).
  core::ExperimentResult run(core::ScenarioConfig cfg) {
    cfg.obs.profile = true;
    if (!traced_ && !flags_.trace_out.empty()) {
      cfg.obs.trace_out = flags_.trace_out;
      traced_ = true;
    }
    core::ExperimentResult r = core::run_experiment(cfg, reps_);
    manifest_.metrics.merge(r.metrics);
    manifest_.profile.merge(r.profile);
    manifest_.trace_digests.insert(manifest_.trace_digests.end(),
                                   r.trace_digests.begin(),
                                   r.trace_digests.end());
    return r;
  }

  /// Print the figure's series table (same format as always) and record
  /// the series + labels in the manifest. Drop-in replacement for the old
  /// direct util::print_series_table call.
  void table(const std::string& title, const std::string& x_label,
             const std::string& y_label, std::vector<util::Series> series) {
    obs::print_series_table(title, x_label, y_label, series);
    manifest_.title = title;
    manifest_.x_label = x_label;
    manifest_.y_label = y_label;
    for (auto& s : series) manifest_.series.push_back(std::move(s));
  }

  void add(util::Series s) { manifest_.series.push_back(std::move(s)); }
  void note(std::string n) { manifest_.notes.push_back(std::move(n)); }
  void param(std::string key, std::string value) {
    manifest_.add_param(std::move(key), std::move(value));
  }

  /// Manifest to --metrics-out when given; profile summary to stderr at
  /// --log-level=info+. Returns the process exit code (non-zero if the
  /// manifest could not be written).
  int finish() {
    if (util::log_level() >= util::LogLevel::Info &&
        !manifest_.profile.scopes.empty()) {
      std::fputs(manifest_.profile.summary().c_str(), stderr);
    }
    if (!flags_.metrics_out.empty()) {
      if (!manifest_.write_file(flags_.metrics_out)) return 1;
      std::printf("manifest: %s\n", flags_.metrics_out.c_str());
    }
    if (!flags_.trace_out.empty()) {
      std::printf("trace: %s\n", flags_.trace_out.c_str());
    }
    return 0;
  }

 private:
  obs::RunManifest manifest_;
  util::CommonFlags flags_;
  std::size_t reps_ = 0;
  bool traced_ = false;
};

}  // namespace alert::bench
