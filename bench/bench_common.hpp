#pragma once

/// Shared helpers for the figure-reproduction benches. Every fig*_ binary
/// regenerates one figure of the paper's evaluation (Sec. 4 analysis
/// figures or Sec. 5 simulation figures) as a textual series table:
/// one row per x value, one column per curve, values `mean (+/- 95% CI)`.
///
/// Replications default to 10 per point; set ALERTSIM_REPS=30 to match the
/// paper's averaging exactly (3x slower).

#include <cstdio>

#include "core/experiment.hpp"
#include "util/stats.hpp"

namespace alert::bench {

/// The paper's default setup (Sec. 5.2).
inline core::ScenarioConfig default_scenario() {
  core::ScenarioConfig cfg;
  cfg.field = {0.0, 0.0, 1000.0, 1000.0};
  cfg.node_count = 200;
  cfg.speed_mps = 2.0;
  cfg.radio_range_m = 250.0;
  cfg.flow_count = 10;
  cfg.packet_interval_s = 2.0;
  cfg.payload_bytes = 512;
  cfg.duration_s = 100.0;
  cfg.alert.partitions_h = 5;
  cfg.seed = 0xA1E47;
  return cfg;
}

inline util::SeriesPoint point(double x, const util::Accumulator& acc) {
  return {x, acc.mean(), acc.ci95_halfwidth()};
}

inline void header(const char* fig, const char* what) {
  std::printf("# %s — %s\n", fig, what);
  std::printf("# defaults: 1000x1000 m, 200 nodes, 2 m/s, 250 m range, "
              "10 flows, 512 B CBR every 2 s, 100 s, H=5\n");
  std::fflush(stdout);
}

}  // namespace alert::bench
