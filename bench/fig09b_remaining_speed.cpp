/// Fig. 9b: analytical number of remaining nodes (Eq. 15) over time for
/// node speeds 1/2/4 m/s at 200 nodes/km^2. Expected shape: faster
/// movement drains the zone faster (decay constant beta ~ 1/v).

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig09b_remaining_speed",
                    "Fig. 9b", "analytical remaining nodes vs time by speed");

  constexpr int kH = 5;
  const analysis::NetworkShape net{1000.0, 1000.0, 200.0};
  std::vector<util::Series> series;
  for (const double v : {1.0, 2.0, 4.0}) {
    util::Series s;
    s.name = std::to_string(static_cast<int>(v)) + " m/s";
    for (double t = 0.0; t <= 40.0; t += 5.0) {
      s.points.push_back({t, analysis::remaining_nodes(net, kH, v, t), 0.0});
    }
    series.push_back(std::move(s));
  }
  fig.table(
      "Fig. 9b — remaining nodes in destination zone (200 nodes, H = 5)",
      "time (s)", "N_r(t)", series);

  // beta values, for the record.
  std::printf("\nzone side a(5) = %.1f m; residence constants beta:\n",
              analysis::side_a(kH, 1000.0));
  for (const double v : {1.0, 2.0, 4.0}) {
    std::printf("  v=%.0f m/s: beta = %.1f s\n", v,
                analysis::beta_square_zone(analysis::side_a(kH, 1000.0), v));
  }
  return fig.finish();
}
