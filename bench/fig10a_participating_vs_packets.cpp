/// Fig. 10a: cumulative actual participating nodes versus the number of
/// packets transmitted, for ALERT and GPSR at 100 and 200 nodes (ALARM and
/// AO2P follow GPSR's greedy scheme and match its curve, as the paper
/// notes). Expected shape: ALERT's curve keeps climbing (every packet
/// recruits new random forwarders) toward the Eq. 7 prediction; GPSR
/// plateaus after the first packet.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig10a_participating_vs_packets",
                    "Fig. 10a", "cumulative participating nodes vs packets");
  const std::size_t reps = fig.reps();

  constexpr std::size_t kPackets = 20;
  std::vector<util::Series> series;
  for (const std::size_t n : {100u, 200u}) {
    for (const core::ProtocolKind proto :
         {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr}) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.node_count = n;
      cfg.protocol = proto;
      cfg.packets_per_flow = kPackets;
      const core::ExperimentResult r = fig.run(cfg);
      util::Series s;
      s.name = std::string(core::protocol_name(proto)) + " " +
               std::to_string(n) + "n";
      for (std::size_t p = 0;
           p < r.cumulative_participants.size() && p < kPackets; ++p) {
        s.points.push_back(bench::point(static_cast<double>(p + 1),
                                        r.cumulative_participants[p]));
      }
      series.push_back(std::move(s));
    }
  }
  fig.table(
      "Fig. 10a — cumulative actual participating nodes per flow",
      "packets", "distinct nodes", series);
  std::printf("\n(reps per point: %zu; ALARM/AO2P track the GPSR curve)\n",
              reps);
  return fig.finish();
}
