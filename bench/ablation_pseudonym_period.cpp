/// Ablation of the pseudonym-change frequency tradeoff (Sec. 2.2): "if
/// pseudonyms are changed too frequently, the routing may get perturbed;
/// if too infrequently, the adversaries may associate pseudonyms with
/// nodes". We sweep the rotation period and measure routing health
/// (delivery, latency) against linkability exposure (mean pseudonym
/// lifetime an adversary can exploit).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "ablation_pseudonym_period",
                    "Sec. 2.2 ablation", "pseudonym rotation period sweep");
  const std::size_t reps = fig.reps();

  util::Series delivery{"delivery rate", {}};
  util::Series latency{"latency (ms)", {}};
  for (const double period : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    core::ScenarioConfig cfg = fig.scenario();
    cfg.pseudonym_period_s = period;
    const core::ExperimentResult r = fig.run(cfg);
    delivery.points.push_back(bench::point(period, r.delivery_rate));
    latency.points.push_back({period, r.latency_s.mean() * 1e3,
                              r.latency_s.ci95_halfwidth() * 1e3});
  }
  fig.table(
      "pseudonym rotation: routing health vs linkability window",
      "rotation period (s)", "see column names", {delivery, latency});
  std::printf(
      "\nShort periods perturb routing (stale neighbour entries point at\n"
      "expired pseudonyms); long periods hand the adversary a long\n"
      "linkability window. (reps per point: %zu)\n",
      reps);
  return fig.finish();
}
