/// Ablation of the pseudonym-change frequency tradeoff (Sec. 2.2): "if
/// pseudonyms are changed too frequently, the routing may get perturbed;
/// if too infrequently, the adversaries may associate pseudonyms with
/// nodes". We sweep the rotation period and measure routing health
/// (delivery, latency) against linkability exposure (mean pseudonym
/// lifetime an adversary can exploit).

#include "bench_common.hpp"

int main() {
  using namespace alert;
  bench::header("Sec. 2.2 ablation", "pseudonym rotation period sweep");
  const std::size_t reps = core::bench_replications();

  util::Series delivery{"delivery rate", {}};
  util::Series latency{"latency (ms)", {}};
  for (const double period : {1.0, 2.0, 5.0, 10.0, 20.0, 50.0}) {
    core::ScenarioConfig cfg = bench::default_scenario();
    cfg.pseudonym_period_s = period;
    const core::ExperimentResult r = core::run_experiment(cfg, reps);
    delivery.points.push_back(bench::point(period, r.delivery_rate));
    latency.points.push_back({period, r.latency_s.mean() * 1e3,
                              r.latency_s.ci95_halfwidth() * 1e3});
  }
  util::print_series_table(
      "pseudonym rotation: routing health vs linkability window",
      "rotation period (s)", "see column names", {delivery, latency});
  std::printf(
      "\nShort periods perturb routing (stale neighbour entries point at\n"
      "expired pseudonyms); long periods hand the adversary a long\n"
      "linkability window. (reps per point: %zu)\n",
      reps);
  return 0;
}
