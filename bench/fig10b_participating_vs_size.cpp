/// Fig. 10b: actual participating nodes after 20 packets versus network
/// size, for all four protocols. Expected shape: ALERT grows strongly with
/// N (13-20 in the paper); GPSR/ALARM/AO2P stay nearly flat (2-3) with a
/// marginal dip as density shortens routes.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig10b_participating_vs_size",
                    "Fig. 10b", "participating nodes after 20 packets vs N");
  const std::size_t reps = fig.reps();

  std::vector<util::Series> series;
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr,
        core::ProtocolKind::Alarm, core::ProtocolKind::Ao2p}) {
    util::Series s{core::protocol_name(proto), {}};
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.node_count = n;
      cfg.protocol = proto;
      cfg.packets_per_flow = 20;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back(
          bench::point(static_cast<double>(n), r.participants));
    }
    series.push_back(std::move(s));
  }
  fig.table(
      "Fig. 10b — actual participating nodes per flow (20 packets)",
      "total nodes", "distinct nodes", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
