/// Fig. 13b: the node density required to keep a fixed number of nodes
/// (k = 6, roughly the H = 5 zone population at 200 nodes) in the
/// destination zone after a 10 s transmission, versus node speed.
/// Expected shape: required density increases with speed. The analytical
/// inverse of Eq. 15 is printed next to a simulated validation at the
/// predicted density.

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig13b_density_vs_speed",
                    "Fig. 13b", "required density vs speed for fixed k");
  const std::size_t reps = fig.reps();

  constexpr int kH = 5;
  constexpr double kRequired = 6.0;
  constexpr double kAfterS = 10.0;
  const analysis::NetworkShape base{1000.0, 1000.0, 200.0};

  util::Series predicted{"required nodes (Eq. 15 inverse)", {}};
  util::Series validated{"remaining at that density (simulated)", {}};
  for (double v = 2.0; v <= 8.0; v += 2.0) {
    const double needed =
        analysis::required_node_count(base, kH, v, kAfterS, kRequired);
    predicted.points.push_back({v, needed, 0.0});

    core::ScenarioConfig cfg = fig.scenario();
    cfg.node_count = static_cast<std::size_t>(needed + 0.5);
    cfg.speed_mps = v;
    cfg.duration_s = cfg.traffic_start_s + kAfterS + 1.0;
    cfg.residency_sample_period_s = kAfterS;
    const core::ExperimentResult r = fig.run(cfg);
    // Sample index 1 is t = +10 s after session start.
    const auto& acc = r.remaining_by_sample.size() > 1
                          ? r.remaining_by_sample[1]
                          : r.remaining_by_sample[0];
    validated.points.push_back(bench::point(v, acc));
  }
  fig.table(
      "Fig. 13b — density required for k = 6 remaining after 10 s (H = 5)",
      "speed (m/s)", "nodes", {predicted, validated});
  std::printf("\n(reps per point: %zu; validated column should sit near "
              "k = 6)\n", reps);
  return fig.finish();
}
