/// Fig. 17: ALERT's delay under the random waypoint model versus the group
/// mobility model (10 groups/150 m and 5 groups/200 m, Sec. 5.1).
/// Expected shape: group mobility adds delay (nodes are less uniformly
/// spread around senders and forwarders), and 5 groups more than 10.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig17_movement_models",
                    "Fig. 17", "ALERT delay under different movement models");
  const std::size_t reps = fig.reps();

  struct Model {
    core::MobilityKind kind;
    std::size_t groups;
    double range;
    const char* name;
  };
  const Model models[] = {
      {core::MobilityKind::RandomWaypoint, 0, 0.0, "random waypoint"},
      {core::MobilityKind::Group, 10, 150.0, "group (10 x 150 m)"},
      {core::MobilityKind::Group, 5, 200.0, "group (5 x 200 m)"},
  };

  std::vector<util::Series> series;
  std::vector<double> delivery;
  for (const Model& m : models) {
    util::Series s{std::string(m.name) + " (ms)", {}};
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.mobility = m.kind;
      cfg.group_count = m.groups == 0 ? 1 : m.groups;
      cfg.group_range_m = m.range;
      cfg.speed_mps = speed;
      // Distance-matched pairs (300-700 m at t=0): uniform sampling over
      // clustered nodes would fill the flow set with short intra-cluster
      // pairs and trivially *lower* the group-mobility delay; matching the
      // pair geometry isolates what Fig. 17 is about — how ALERT's
      // randomized forwarding copes with non-uniform node distributions
      // (EXPERIMENTS.md discusses this design choice).
      cfg.min_pair_distance_m = 300.0;
      cfg.max_pair_distance_m = 700.0;
      // Long CBR sessions keep resending on missing confirmations
      // (Sec. 2.3), so transient group partitions turn into delay rather
      // than silent loss.
      cfg.alert.max_retransmissions = 4;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back({speed, r.e2e_delay_s.mean() * 1e3,
                          r.e2e_delay_s.ci95_halfwidth() * 1e3});
      delivery.push_back(r.delivery_rate.mean());
    }
    series.push_back(std::move(s));
  }
  fig.table("Fig. 17 — ALERT delay by movement model",
                           "speed (m/s)", "end-to-end delay (ms)", series);
  std::printf("\nmean delivery rates per model/speed (context for the\n"
              "survivorship discussion in EXPERIMENTS.md):");
  for (std::size_t i = 0; i < delivery.size(); ++i) {
    if (i % 4 == 0) std::printf("\n  %s:", models[i / 4].name);
    std::printf(" %.2f", delivery[i]);
  }
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
