/// Fig. 15a: hops per packet versus network size, including the "ALARM
/// (include id dissemination hops)" accounting. Expected shape: ALERT
/// roughly one-to-a-few hops above the greedy baselines (random relays
/// lengthen paths); ALARM-with-dissemination far above everything,
/// about double ALERT.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig15a_hops_vs_nodes",
                    "Fig. 15a", "hops per packet vs number of nodes");
  const std::size_t reps = fig.reps();

  std::vector<util::Series> series;
  util::Series alarm_diss{"ALARM (incl. dissemination)", {}};
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr,
        core::ProtocolKind::Alarm, core::ProtocolKind::Ao2p}) {
    util::Series s{core::protocol_name(proto), {}};
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.node_count = n;
      cfg.protocol = proto;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back(bench::point(static_cast<double>(n), r.hops));
      if (proto == core::ProtocolKind::Alarm) {
        alarm_diss.points.push_back(
            bench::point(static_cast<double>(n), r.hops_with_control));
      }
    }
    series.push_back(std::move(s));
  }
  series.push_back(std::move(alarm_diss));
  fig.table("Fig. 15a — hops per packet", "total nodes",
                           "hops", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
