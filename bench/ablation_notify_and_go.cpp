/// Ablation of "notify and go" (Sec. 2.6): sweep the cover window t0 and
/// measure (a) the timing attacker's source-identification rate and
/// (b) the latency the camouflage costs. The paper's guidance — t0 long
/// enough to hide S among its neighbours, short enough not to hurt
/// latency — becomes a measurable knee.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "ablation_notify_and_go",
                    "Sec. 2.6 ablation", "notify-and-go window sweep");
  const std::size_t reps = fig.reps();

  util::Series attack{"timing src-id rate", {}};
  util::Series latency{"latency (ms)", {}};
  util::Series covers{"cover pkts per data", {}};

  // t0 = 0 disables the mechanism entirely (the paper's baseline).
  for (const double t0_ms : {0.0, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    core::ScenarioConfig cfg = fig.scenario();
    cfg.run_attacks = true;
    if (t0_ms == 0.0) {
      cfg.alert.notify_and_go = false;
    } else {
      cfg.alert.notify_t0_s = t0_ms * 1e-3;
    }
    const core::ExperimentResult r = fig.run(cfg);
    attack.points.push_back(bench::point(t0_ms, r.timing_source_rate));
    latency.points.push_back({t0_ms, r.latency_s.mean() * 1e3,
                              r.latency_s.ci95_halfwidth() * 1e3});
    covers.points.push_back(bench::point(t0_ms, r.cover_per_data));
  }
  fig.table("notify-and-go: anonymity vs latency",
                           "t0 (ms)", "see column names",
                           {attack, latency, covers});
  std::printf("\n(reps per point: %zu; t0 = 0 row is the mechanism "
              "disabled)\n", reps);
  return fig.finish();
}
