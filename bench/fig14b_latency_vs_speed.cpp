/// Fig. 14b: latency per packet versus node speed (2-8 m/s), with and
/// without destination update in the location service. Expected shape:
/// with updates, GPSR and ALERT are flat in speed; without updates both
/// drift upward (stale targets lengthen routes); ALARM/AO2P stay
/// crypto-dominated far above both.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig14b_latency_vs_speed",
                    "Fig. 14b", "latency per packet vs node speed");
  const std::size_t reps = fig.reps();

  struct Variant {
    core::ProtocolKind proto;
    bool update;
    const char* name;
  };
  const Variant variants[] = {
      {core::ProtocolKind::Alert, true, "ALERT w/ update"},
      {core::ProtocolKind::Alert, false, "ALERT w/o update"},
      {core::ProtocolKind::Gpsr, true, "GPSR w/ update"},
      {core::ProtocolKind::Gpsr, false, "GPSR w/o update"},
      {core::ProtocolKind::Alarm, true, "ALARM"},
      {core::ProtocolKind::Ao2p, true, "AO2P"},
  };

  std::vector<util::Series> series;
  for (const Variant& v : variants) {
    util::Series s{std::string(v.name) + " (ms)", {}};
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.protocol = v.proto;
      cfg.speed_mps = speed;
      cfg.destination_update = v.update;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back({speed, r.latency_s.mean() * 1e3,
                          r.latency_s.ci95_halfwidth() * 1e3});
    }
    series.push_back(std::move(s));
  }
  fig.table("Fig. 14b — latency per packet vs speed",
                           "speed (m/s)", "latency (ms)", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
