/// Sec. 4.3: the location service is usable only if its update traffic is
/// a small fraction of regular communication — the paper derives the
/// condition N_L ~ sqrt(N) with f << F. This bench prints the analytic
/// ratio across server counts and update frequencies, plus the measured
/// message counters of a simulated run for the default deployment.

#include <cmath>

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "sec43_location_overhead",
                    "Sec. 4.3", "location service overhead ratio");

  std::vector<util::Series> series;
  for (const double f : {0.2, 1.0, 5.0}) {
    util::Series s{"update freq f=" + std::to_string(f).substr(0, 3) +
                       " Hz",
                   {}};
    for (const double nl : {5.0, 10.0, 14.0, 20.0, 40.0}) {
      s.points.push_back(
          {nl, analysis::location_overhead_ratio(200.0, nl, f, 0.5), 0.0});
    }
    series.push_back(std::move(s));
  }
  fig.table(
      "overhead ratio (N = 200 nodes, regular traffic F = 0.5 Hz/node)",
      "location servers N_L", "(N_L(N_L-1)f + Nf) / (N F)", series);
  std::printf("\nsqrt(N) = %.1f servers — the paper's sizing rule; ratios\n"
              "must be << 1 for the service to be affordable.\n",
              std::sqrt(200.0));

  // Measured counters from one simulated run at the default deployment.
  core::ScenarioConfig cfg = fig.scenario();
  const core::RunResult r = core::run_once(cfg, 0);
  std::printf("\nmeasured (one 100 s run, 14 servers, f = 1 Hz):\n"
              "  location update messages: %llu\n"
              "  hello beacons:            %llu\n"
              "  data packets sent:        %llu\n",
              static_cast<unsigned long long>(r.location_update_messages),
              static_cast<unsigned long long>(r.hello_messages),
              static_cast<unsigned long long>(r.sent));
  return fig.finish();
}
