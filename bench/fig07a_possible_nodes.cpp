/// Fig. 7a: analytical expected number of possible participating nodes
/// (Eq. 7) versus the number of partitions H, for networks of 100, 200 and
/// 400 nodes. Expected shape: fast rise from H=1 to 2, then saturation
/// near ~N/4..N/3 of the population.

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig07a_possible_nodes",
                    "Fig. 7a", "estimated possible participating nodes (Eq. 7)");

  std::vector<util::Series> series;
  for (const double n : {100.0, 200.0, 400.0}) {
    util::Series s;
    s.name = std::to_string(static_cast<int>(n)) + " nodes";
    const analysis::NetworkShape net{1000.0, 1000.0, n};
    for (int H = 1; H <= 7; ++H) {
      s.points.push_back(
          {static_cast<double>(H),
           analysis::expected_possible_nodes(net, H), 0.0});
    }
    series.push_back(std::move(s));
  }
  fig.table("Fig. 7a — possible participating nodes",
                           "partitions H", "expected nodes N_e", series);
  return fig.finish();
}
