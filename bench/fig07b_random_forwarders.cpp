/// Fig. 7b: analytical expected number of random forwarders (Eq. 10)
/// versus the number of partitions H. Expected shape: linear growth —
/// each extra partition adds an RF+ coin-flip worth 1/2 expected RF,
/// weighted by closeness.

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig07b_random_forwarders",
                    "Fig. 7b", "estimated random forwarders (Eq. 10)");

  util::Series s{"E[N_RF]", {}};
  for (int H = 1; H <= 10; ++H) {
    s.points.push_back(
        {static_cast<double>(H), analysis::expected_rfs(H), 0.0});
  }
  fig.table("Fig. 7b — expected random forwarders",
                           "partitions H", "E[N_RF]", {s});

  // Linearity check printed for EXPERIMENTS.md: successive differences.
  std::printf("\nsuccessive differences (linearity evidence):\n");
  for (int H = 2; H <= 10; ++H) {
    std::printf("  H=%d -> %d: %+0.4f\n", H - 1, H,
                analysis::expected_rfs(H) - analysis::expected_rfs(H - 1));
  }
  return fig.finish();
}
