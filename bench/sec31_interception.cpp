/// Sec. 3.1's resilience claim, quantified: "the communication of two
/// nodes in ALERT cannot be completely stopped by compromising certain
/// nodes because the number of possible participating nodes ... is very
/// large". We sweep the number of compromised nodes c and report, for
/// ALERT vs GPSR, the fraction of flows an adversary fully intercepts
/// (every packet relayed by a compromised node — enough to block or
/// tamper the whole session).

#include "attack/compromise.hpp"
#include "attack/observer.hpp"
#include "bench_common.hpp"
#include "core/scenario.hpp"
#include "loc/pseudonym.hpp"

namespace {

using namespace alert;

std::vector<attack::ObservedEvent> record_run(core::ProtocolKind proto,
                                              std::uint64_t seed) {
  // Drive one default-scenario run and capture the observer log directly.
  sim::Simulator simulator;
  core::ScenarioConfig cfg = bench::default_scenario();
  cfg.protocol = proto;
  cfg.seed = seed;
  util::Rng rng(cfg.seed);
  net::Network network(simulator, cfg.network_config(),
                       std::make_unique<net::RandomWaypoint>(cfg.field,
                                                             cfg.speed_mps),
                       rng.fork(1), cfg.duration_s);
  loc::PseudonymManager pseudonyms({}, rng.fork(2));
  network.set_pseudonym_provider(&pseudonyms);
  loc::LocationService location(network, {}, cfg.duration_s);
  std::unique_ptr<routing::Protocol> protocol;
  if (proto == core::ProtocolKind::Alert) {
    protocol = std::make_unique<routing::AlertRouter>(network, location,
                                                      cfg.alert);
  } else {
    protocol =
        std::make_unique<routing::GpsrRouter>(network, location, cfg.gpsr);
  }
  attack::PassiveObserver observer(network);
  network.add_listener(&observer);
  util::Rng traffic = rng.fork(3);
  for (std::uint32_t f = 0; f < cfg.flow_count; ++f) {
    const auto src = static_cast<net::NodeId>(traffic.below(cfg.node_count));
    auto dst = src;
    while (dst == src) {
      dst = static_cast<net::NodeId>(traffic.below(cfg.node_count));
    }
    routing::Protocol* p = protocol.get();
    for (std::uint32_t s = 0; s < 40; ++s) {
      simulator.schedule_at(cfg.traffic_start_s + 2.0 * s, [p, src, dst, f, s] {
        p->send(src, dst, 512, f, s);
      });
    }
  }
  simulator.run_until(cfg.duration_s);
  return observer.events();
}

}  // namespace

int main(int argc, char** argv) {
  bench::Figure fig(argc, argv, "sec31_interception",
                    "Sec. 3.1", "flow blockage under node compromise",
                    /*fallback_reps=*/5);
  const std::size_t reps = fig.reps();

  // The paper's scenario: the adversary watched packet i's route and
  // compromises up to c of its relays, hoping to catch packet i+1. A
  // fixed-route protocol hands it everything; ALERT re-randomizes.
  std::vector<util::Series> series;
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr}) {
    util::Series targeted{std::string(core::protocol_name(proto)) +
                              " targeted next-pkt interception",
                          {}};
    util::Series blocked{std::string(core::protocol_name(proto)) +
                             " random-c full-flow blockage",
                         {}};
    // Reuse one recorded log per rep across all budgets.
    std::vector<std::vector<attack::ObservedEvent>> logs;
    for (std::size_t r = 0; r < reps; ++r) {
      logs.push_back(record_run(proto, 1000 + r));
    }
    for (const std::size_t c : {1u, 2u, 4u, 8u, 16u}) {
      util::Accumulator acc_targeted, acc_blocked;
      for (std::size_t r = 0; r < reps; ++r) {
        util::Rng rng(55 + r);
        acc_targeted.add(attack::targeted_next_packet_interception(
            logs[r], c, rng));
        acc_blocked.add(
            attack::compromise_analysis(logs[r], 200, c, 100, rng)
                .flow_blockage);
      }
      targeted.points.push_back(
          bench::point(static_cast<double>(c), acc_targeted));
      blocked.points.push_back(
          bench::point(static_cast<double>(c), acc_blocked));
    }
    series.push_back(std::move(targeted));
    series.push_back(std::move(blocked));
  }
  fig.table(
      "Sec. 3.1 — interception under node compromise (200 nodes)",
      "budget c", "fraction", series);
  std::printf(
      "\ntargeted: adversary compromises c relays of the packet it just\n"
      "observed and waits for the next one — GPSR's repeated route hands\n"
      "it over, ALERT's re-randomized route does not (Sec. 3.1).\n"
      "(reps per point: %zu)\n",
      reps);
  return fig.finish();
}
