/// Fig. 16b: delivery rate versus node speed with and without destination
/// update. Expected shape: with updates, flat near 1.0; without updates,
/// decay with speed — and ALERT above GPSR because the final zone
/// broadcast still catches a destination that wandered near (the paper's
/// "interesting observation").

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig16b_delivery_vs_speed",
                    "Fig. 16b", "delivery rate vs node speed");
  const std::size_t reps = fig.reps();

  struct Variant {
    core::ProtocolKind proto;
    bool update;
    const char* name;
  };
  const Variant variants[] = {
      {core::ProtocolKind::Alert, true, "ALERT w/ update"},
      {core::ProtocolKind::Alert, false, "ALERT w/o update"},
      {core::ProtocolKind::Gpsr, true, "GPSR w/ update"},
      {core::ProtocolKind::Gpsr, false, "GPSR w/o update"},
  };

  std::vector<util::Series> series;
  for (const Variant& v : variants) {
    util::Series s{v.name, {}};
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.protocol = v.proto;
      cfg.speed_mps = speed;
      cfg.destination_update = v.update;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back(bench::point(speed, r.delivery_rate));
    }
    series.push_back(std::move(s));
  }
  fig.table("Fig. 16b — delivery rate vs speed",
                           "speed (m/s)", "delivery rate", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
