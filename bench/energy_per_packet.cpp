/// The paper's summary claim (Sec. 5.6): ALERT "has significantly lower
/// energy consumption compared to AO2P and ALARM, and provides comparable
/// routing efficiency". This bench quantifies it: network-wide energy per
/// delivered packet (radio + crypto), the crypto share, and the worst
/// single-node drain (greedy protocols concentrate relaying on shortest-
/// path nodes; ALERT's randomization spreads it — the battery-lifetime
/// argument of Sec. 1).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "energy_per_packet",
                    "Energy", "energy per delivered packet by protocol");
  const std::size_t reps = fig.reps();

  util::Series per_pkt{"J per delivered packet", {}};
  util::Series crypto_share{"crypto share of total J", {}};
  util::Series hotspot{"max single-node J", {}};
  std::vector<std::string> labels;
  double x = 0.0;
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr,
        core::ProtocolKind::Alarm, core::ProtocolKind::Ao2p}) {
    core::ScenarioConfig cfg = fig.scenario();
    cfg.protocol = proto;
    const core::ExperimentResult r = fig.run(cfg);
    per_pkt.points.push_back(bench::point(x, r.energy_per_delivered_j));
    const double share =
        r.energy_total_j.mean() > 0.0
            ? r.energy_crypto_j.mean() / r.energy_total_j.mean()
            : 0.0;
    crypto_share.points.push_back({x, share, 0.0});
    hotspot.points.push_back(bench::point(x, r.energy_max_node_j));
    labels.push_back(core::protocol_name(proto));
    x += 1.0;
  }
  fig.table("energy accounting (x: 0=ALERT 1=GPSR 2=ALARM "
                           "3=AO2P)",
                           "protocol idx", "see column names",
                           {per_pkt, crypto_share, hotspot});
  std::printf("\nExpected shape: ALERT's energy/packet a modest factor\n"
              "above GPSR (longer routes, covers, one symmetric op) and\n"
              "far below ALARM/AO2P, whose totals are crypto-dominated.\n"
              "(reps per point: %zu)\n", reps);
  return fig.finish();
}
