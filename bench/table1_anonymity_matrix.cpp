/// Table 1 (empirical counterpart): the paper's taxonomy ascribes identity
/// / location / route anonymity properties to each protocol class. This
/// bench *measures* them by mounting the attack battery against each
/// implemented protocol and printing a verdict matrix:
///   - source identity: timing-attack source identification rate (low =
///     protected);
///   - destination identity: intersection/frequency attack success (low =
///     protected);
///   - route anonymity: consecutive-route Jaccard overlap (low = routes
///     untraceable).

#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "table1_anonymity_matrix",
                    "Table 1", "measured anonymity property matrix",
                    /*fallback_reps=*/5);
  const std::size_t reps = fig.reps();

  std::printf("\n%-8s  %-12s  %-12s  %-12s  %-12s  %s\n", "proto",
              "src(timing)", "dst(timing)", "dst(inter.)", "route-ovl",
              "verdict");
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr,
        core::ProtocolKind::Alarm, core::ProtocolKind::Ao2p,
        core::ProtocolKind::Zap}) {
    core::ScenarioConfig cfg = fig.scenario();
    cfg.protocol = proto;
    cfg.run_attacks = true;
    if (proto == core::ProtocolKind::Alert) {
      // The full defence: notify-and-go plus the intersection
      // countermeasure (both on by default only for this bench).
      cfg.alert.intersection_countermeasure = true;
    }
    const core::ExperimentResult r = fig.run(cfg);
    const double src = r.timing_source_rate.mean();
    const double dst_timing = r.timing_dest_rate.mean();
    const double dst_inter = r.intersection_success.mean();
    const double overlap = r.route_overlap.mean();
    // A destination is exposed if *either* attack pins it: the baselines
    // deliver by unicast (timing identifies the terminal receiver); ALERT
    // is attacked through its zone broadcasts (intersection, Sec. 3.3).
    const bool src_anon = src < 0.3;
    const bool dst_anon = std::max(dst_timing, dst_inter) < 0.3;
    const bool route_anon = overlap < 0.5;
    std::printf("%-8s  %-12.2f  %-12.2f  %-12.2f  %-12.2f  "
                "src:%s dst:%s route:%s\n",
                core::protocol_name(proto), src, dst_timing, dst_inter,
                overlap, src_anon ? "yes" : "NO", dst_anon ? "yes" : "NO",
                route_anon ? "yes" : "NO");
  }
  std::printf(
      "\nPaper's Table 1 expectation: ALERT protects source, destination\n"
      "and route; the greedy geographic baselines expose the route and at\n"
      "least one endpoint. Caveat recorded in EXPERIMENTS.md: a frequency-\n"
      "ranking intersection variant (not considered by the paper) still\n"
      "degrades ALERT's destination anonymity over very long sessions.\n"
      "(reps per row: %zu)\n",
      reps);
  return fig.finish();
}
