/// Fig. 15b: hops per packet versus node speed, with and without
/// destination update, plus ALARM's dissemination accounting. Expected
/// shape: with updates all curves flat; without updates ALERT/GPSR hop
/// counts climb with speed (stale destination positions stretch routes).

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig15b_hops_vs_speed",
                    "Fig. 15b", "hops per packet vs node speed");
  const std::size_t reps = fig.reps();

  struct Variant {
    core::ProtocolKind proto;
    bool update;
    const char* name;
  };
  const Variant variants[] = {
      {core::ProtocolKind::Alert, true, "ALERT w/ update"},
      {core::ProtocolKind::Alert, false, "ALERT w/o update"},
      {core::ProtocolKind::Gpsr, true, "GPSR w/ update"},
      {core::ProtocolKind::Gpsr, false, "GPSR w/o update"},
      {core::ProtocolKind::Alarm, true, "ALARM"},
      {core::ProtocolKind::Ao2p, true, "AO2P"},
  };

  std::vector<util::Series> series;
  util::Series alarm_diss{"ALARM (incl. dissemination)", {}};
  for (const Variant& v : variants) {
    util::Series s{v.name, {}};
    for (double speed = 2.0; speed <= 8.0; speed += 2.0) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.protocol = v.proto;
      cfg.speed_mps = speed;
      cfg.destination_update = v.update;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back(bench::point(speed, r.hops));
      if (v.proto == core::ProtocolKind::Alarm) {
        alarm_diss.points.push_back(bench::point(speed, r.hops_with_control));
      }
    }
    series.push_back(std::move(s));
  }
  series.push_back(std::move(alarm_diss));
  fig.table("Fig. 15b — hops per packet vs speed",
                           "speed (m/s)", "hops", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
