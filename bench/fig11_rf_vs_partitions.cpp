/// Fig. 11: simulated number of random forwarders per packet versus the
/// number of partitions H, next to the Eq. 10 analytical expectation.
/// Expected shape: approximately linear growth in H, consistent with
/// Fig. 7b.

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig11_rf_vs_partitions",
                    "Fig. 11", "random forwarders per packet vs partitions");
  const std::size_t reps = fig.reps();

  util::Series sim{"ALERT (simulated)", {}};
  util::Series theory{"Eq. 10 (analysis)", {}};
  for (int H = 1; H <= 7; ++H) {
    core::ScenarioConfig cfg = fig.scenario();
    cfg.alert.partitions_h = H;
    cfg.packets_per_flow = 20;
    const core::ExperimentResult r = fig.run(cfg);
    sim.points.push_back(bench::point(H, r.rf_per_packet));
    theory.points.push_back({static_cast<double>(H),
                             analysis::expected_rfs(H), 0.0});
  }
  fig.table("Fig. 11 — random forwarders per packet",
                           "partitions H", "RFs/packet", {sim, theory});
  std::printf("\n(reps per point: %zu; simulated counts sit above the\n"
              " idealized analysis because voids en route also create RFs)\n",
              reps);
  return fig.finish();
}
