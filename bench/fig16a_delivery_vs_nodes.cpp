/// Fig. 16a: delivery rate versus network size with destination update.
/// Expected shape: all protocols near 1.0 except in the sparse 50-node
/// network where relays are sometimes unavailable.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig16a_delivery_vs_nodes",
                    "Fig. 16a", "delivery rate vs number of nodes");
  const std::size_t reps = fig.reps();

  std::vector<util::Series> series;
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr,
        core::ProtocolKind::Alarm, core::ProtocolKind::Ao2p}) {
    util::Series s{core::protocol_name(proto), {}};
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.node_count = n;
      cfg.protocol = proto;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back(
          bench::point(static_cast<double>(n), r.delivery_rate));
    }
    series.push_back(std::move(s));
  }
  fig.table("Fig. 16a — delivery rate (with dest. update)",
                           "total nodes", "delivery rate", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
