// scale_latency_vs_nodes: the fig14a-style curve continued past the paper's
// 400-node x-axis into alert::scale territory. Runs one ALERT replication
// per population (default 10k and 100k nodes; 1M is opt-in — it needs a few
// GB of RSS and minutes of wall time) with every scale backend on (spatial
// grid, calendar event queue, pooled delivery frames) at the paper's
// density (the arena grows as sqrt(n/200) km so neighbourhoods stay at
// Sec. 5.2 scale), and writes one RunManifest with the latency and
// events/s series, per-replication digests, and the per-subsystem
// wall-clock self-profile (net.query isolates the neighbour index).
//
// Usage:
//   scale_latency_vs_nodes [--nodes 10000,100000] [--million]
//                          [--duration 5] [--no-scale-backends]
//                          [--out scale_latency_manifest.json] [--peak-rss]
//                          [--log-level L]
//
// --no-scale-backends reruns the identical workload on the linear-scan /
// binary-heap / malloc defaults (digests must match; see
// tests/integration/scale_equivalence_test.cpp for the enforced version).

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/profile.hpp"
#include "obs/resource.hpp"
#include "perf/kernels.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

using namespace alert;

int usage(const char* msg) {
  if (msg != nullptr) {
    std::fprintf(stderr, "scale_latency_vs_nodes: %s\n", msg);
  }
  std::fprintf(stderr,
               "usage: scale_latency_vs_nodes [--nodes N,N,...] [--million]\n"
               "       [--duration S] [--no-scale-backends] [--out FILE]\n"
               "       [--peak-rss] [--log-level L]\n");
  return 2;
}

/// Parse "10000,100000" into counts; returns false on any bad token.
bool parse_node_list(const std::string& text, std::vector<std::size_t>* out) {
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    const std::string token = text.substr(pos, next - pos);
    try {
      std::size_t used = 0;
      const unsigned long long n = std::stoull(token, &used);
      if (used != token.size() || n == 0) return false;
      out->push_back(static_cast<std::size_t>(n));
    } catch (...) {
      return false;
    }
    pos = next + 1;
  }
  return !out->empty();
}

}  // namespace

int main(int argc, char** argv) {
  std::string error;
  const auto args = util::CliArgs::parse(argc, argv, &error);
  if (!args) return usage(error.c_str());

  const std::string nodes_arg =
      args->get("nodes", std::string("10000,100000"));
  const bool million = args->get("million", false);
  const double duration_s = args->get("duration", 5.0);
  const bool scale_backends = !args->get("no-scale-backends", false);
  const std::string out_path =
      args->get("out", std::string("scale_latency_manifest.json"));
  const bool record_rss = args->get("peak-rss", false);
  const std::string log_level = args->get("log-level", std::string("info"));
  for (const auto& key : args->unused()) {
    return usage(("unknown flag --" + key).c_str());
  }
  if (const auto level = util::parse_log_level(log_level)) {
    util::set_log_level(*level);
  } else {
    return usage(("bad --log-level=" + log_level).c_str());
  }
  if (duration_s <= 0.0) return usage("--duration must be > 0");

  std::vector<std::size_t> node_counts;
  if (!parse_node_list(nodes_arg, &node_counts)) {
    return usage("--nodes wants a comma-separated list of positive counts");
  }
  if (million) node_counts.push_back(1'000'000);

  scale::Backends backends;
  if (scale_backends) {
    backends.grid = true;
    backends.calendar = true;
    backends.pool_packets = true;
  }

  obs::RunManifest manifest;
  manifest.name = "scale_latency_vs_nodes";
  manifest.title = "ALERT latency vs. nodes (alert::scale arena)";
  manifest.x_label = "nodes";
  manifest.y_label = "latency (s)";
  manifest.add_param("duration_s", std::to_string(duration_s));
  manifest.add_param("scale_backends", scale_backends ? "true" : "false");

  util::Series latency;
  latency.name = "ALERT";
  util::Series events_per_s;
  events_per_s.name = "events_per_s";

  for (const std::size_t n : node_counts) {
    core::ScenarioConfig config =
        perf::scale_scenario(n, duration_s, backends);
    config.obs.profile = true;  // per-subsystem scopes, incl. net.query
    if (manifest.seed == 0) manifest.seed = config.seed;
    ALERT_LOG_INFO("scale bench: %zu nodes, %.1f s sim time...", n,
                   duration_s);
    const std::uint64_t start = obs::monotonic_ns();
    const core::RunResult run = core::run_once(config, 0);
    const double wall_s =
        static_cast<double>(obs::monotonic_ns() - start) / 1e9;
    latency.points.push_back(
        {static_cast<double>(n), run.mean_latency_s, 0.0});
    events_per_s.points.push_back(
        {static_cast<double>(n),
         static_cast<double>(run.events_executed) / wall_s, 0.0});
    manifest.trace_digests.push_back(run.trace_digest);
    manifest.metrics.merge(run.metrics);
    manifest.profile.merge(run.profile);
    ++manifest.replications;
    ALERT_LOG_INFO(
        "scale bench: %zu nodes done in %.1f s wall (%.0f events/s, "
        "digest %016llx)",
        n, wall_s,
        static_cast<double>(run.events_executed) / wall_s,
        static_cast<unsigned long long>(run.trace_digest));
  }

  manifest.series.push_back(std::move(latency));
  manifest.series.push_back(std::move(events_per_s));
  if (record_rss) manifest.peak_rss_bytes = obs::peak_rss_bytes();
  if (!manifest.write_file(out_path)) {
    std::fprintf(stderr, "scale_latency_vs_nodes: cannot write %s\n",
                 out_path.c_str());
    return 2;
  }
  std::printf("wrote %s (%zu populations)\n", out_path.c_str(),
              manifest.replications);
  std::printf("%s\n", manifest.profile.summary().c_str());
  return 0;
}
