/// Fig. 9a: analytical number of nodes remaining in the destination zone
/// (Eq. 15) over time, at 2 m/s, for network populations 100/200/400
/// (the paper's "node densities" over the 1 km^2 field). Expected shape:
/// exponential decay, scaled by density.

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig09a_remaining_analytical",
                    "Fig. 9a", "analytical remaining nodes vs time (Eq. 15)");

  constexpr int kH = 5;
  constexpr double kSpeed = 2.0;
  std::vector<util::Series> series;
  for (const double n : {100.0, 200.0, 400.0}) {
    util::Series s;
    s.name = std::to_string(static_cast<int>(n)) + " nodes/km^2";
    const analysis::NetworkShape net{1000.0, 1000.0, n};
    for (double t = 0.0; t <= 40.0; t += 5.0) {
      s.points.push_back({t, analysis::remaining_nodes(net, kH, kSpeed, t),
                          0.0});
    }
    series.push_back(std::move(s));
  }
  fig.table(
      "Fig. 9a — remaining nodes in destination zone (v = 2 m/s, H = 5)",
      "time (s)", "N_r(t)", series);
  return fig.finish();
}
