/// Ablation of the H / k tradeoff the paper repeatedly flags (Secs. 2.3,
/// 4.2, 5.4): more partitions H means more random forwarders (route
/// anonymity) but a smaller destination zone (weaker k-anonymity for D)
/// and longer paths (cost). This bench sweeps H and prints all three
/// sides, so the "optimal tradeoff point" discussion is reproducible.

#include "analysis/theory.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "ablation_h_tradeoff",
                    "H/k tradeoff", "anonymity vs cost as H grows");
  const std::size_t reps = fig.reps();

  util::Series rfs{"RFs/packet (route anon.)", {}};
  util::Series zone_pop{"zone population k (dest anon.)", {}};
  util::Series hops{"hops/packet (cost)", {}};
  util::Series latency{"latency ms (cost)", {}};
  for (int H = 2; H <= 7; ++H) {
    core::ScenarioConfig cfg = fig.scenario();
    cfg.alert.partitions_h = H;
    const core::ExperimentResult r = fig.run(cfg);
    rfs.points.push_back(bench::point(H, r.rf_per_packet));
    hops.points.push_back(bench::point(H, r.hops));
    latency.points.push_back({static_cast<double>(H),
                              r.latency_s.mean() * 1e3,
                              r.latency_s.ci95_halfwidth() * 1e3});
    zone_pop.points.push_back(
        {static_cast<double>(H),
         routing::expected_zone_population(200.0, H), 0.0});
  }
  fig.table("H/k tradeoff (200 nodes)", "partitions H",
                           "see column names",
                           {rfs, zone_pop, hops, latency});
  std::printf(
      "\nReading: route anonymity (RFs) buys linearly with H while the\n"
      "destination's k-anonymity halves per step — the paper's argument\n"
      "for choosing H so that k stays a 'reasonable number' (H=5 at 200\n"
      "nodes -> k ~ 6). (reps per point: %zu)\n",
      reps);
  return fig.finish();
}
