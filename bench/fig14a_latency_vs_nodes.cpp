/// Fig. 14a: latency per packet versus network size for the four
/// protocols. Expected shape: ALARM and AO2P two orders of magnitude
/// above GPSR/ALERT (hop-by-hop public-key crypto, ~250 ms/op); AO2P a
/// little above ALARM (contention phase); ALERT slightly above GPSR
/// (longer random path + one symmetric encryption); every curve falls as
/// density rises.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig14a_latency_vs_nodes",
                    "Fig. 14a", "latency per packet vs number of nodes");
  const std::size_t reps = fig.reps();

  std::vector<util::Series> series;
  for (const core::ProtocolKind proto :
       {core::ProtocolKind::Alert, core::ProtocolKind::Gpsr,
        core::ProtocolKind::Alarm, core::ProtocolKind::Ao2p}) {
    util::Series s{std::string(core::protocol_name(proto)) + " (ms)", {}};
    for (const std::size_t n : {50u, 100u, 150u, 200u}) {
      core::ScenarioConfig cfg = fig.scenario();
      cfg.node_count = n;
      cfg.protocol = proto;
      const core::ExperimentResult r = fig.run(cfg);
      s.points.push_back({static_cast<double>(n),
                          r.latency_s.mean() * 1e3,
                          r.latency_s.ci95_halfwidth() * 1e3});
    }
    series.push_back(std::move(s));
  }
  fig.table("Fig. 14a — latency per packet",
                           "total nodes", "latency (ms)", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
