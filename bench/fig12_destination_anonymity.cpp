/// Fig. 12: simulated number of remaining nodes in destination zones over
/// time, H = 5, v = 2 m/s, for 100/150/200 nodes. Expected shape: decay
/// over time, higher curves for higher density — matching Fig. 9a's
/// analysis.

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace alert;
  bench::Figure fig(argc, argv, "fig12_destination_anonymity",
                    "Fig. 12", "simulated destination-zone residency");
  const std::size_t reps = fig.reps();

  std::vector<util::Series> series;
  for (const std::size_t n : {100u, 150u, 200u}) {
    core::ScenarioConfig cfg = fig.scenario();
    cfg.node_count = n;
    cfg.duration_s = 45.0;
    cfg.residency_sample_period_s = 5.0;
    const core::ExperimentResult r = fig.run(cfg);
    util::Series s{std::to_string(n) + " nodes", {}};
    for (std::size_t i = 0; i < r.remaining_by_sample.size(); ++i) {
      s.points.push_back(bench::point(
          static_cast<double>(i) * cfg.residency_sample_period_s,
          r.remaining_by_sample[i]));
    }
    series.push_back(std::move(s));
  }
  fig.table(
      "Fig. 12 — remaining nodes in destination zone (H = 5, v = 2 m/s)",
      "time (s)", "remaining nodes", series);
  std::printf("\n(reps per point: %zu)\n", reps);
  return fig.finish();
}
