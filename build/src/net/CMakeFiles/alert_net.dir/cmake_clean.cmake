file(REMOVE_RECURSE
  "CMakeFiles/alert_net.dir/mac.cpp.o"
  "CMakeFiles/alert_net.dir/mac.cpp.o.d"
  "CMakeFiles/alert_net.dir/mobility.cpp.o"
  "CMakeFiles/alert_net.dir/mobility.cpp.o.d"
  "CMakeFiles/alert_net.dir/network.cpp.o"
  "CMakeFiles/alert_net.dir/network.cpp.o.d"
  "CMakeFiles/alert_net.dir/node.cpp.o"
  "CMakeFiles/alert_net.dir/node.cpp.o.d"
  "CMakeFiles/alert_net.dir/packet.cpp.o"
  "CMakeFiles/alert_net.dir/packet.cpp.o.d"
  "libalert_net.a"
  "libalert_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
