
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/mac.cpp" "src/net/CMakeFiles/alert_net.dir/mac.cpp.o" "gcc" "src/net/CMakeFiles/alert_net.dir/mac.cpp.o.d"
  "/root/repo/src/net/mobility.cpp" "src/net/CMakeFiles/alert_net.dir/mobility.cpp.o" "gcc" "src/net/CMakeFiles/alert_net.dir/mobility.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/net/CMakeFiles/alert_net.dir/network.cpp.o" "gcc" "src/net/CMakeFiles/alert_net.dir/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/net/CMakeFiles/alert_net.dir/node.cpp.o" "gcc" "src/net/CMakeFiles/alert_net.dir/node.cpp.o.d"
  "/root/repo/src/net/packet.cpp" "src/net/CMakeFiles/alert_net.dir/packet.cpp.o" "gcc" "src/net/CMakeFiles/alert_net.dir/packet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/alert_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alert_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alert_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
