# Empty dependencies file for alert_net.
# This may be replaced when dependencies are built.
