file(REMOVE_RECURSE
  "libalert_net.a"
)
