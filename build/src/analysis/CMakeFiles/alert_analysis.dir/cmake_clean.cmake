file(REMOVE_RECURSE
  "CMakeFiles/alert_analysis.dir/theory.cpp.o"
  "CMakeFiles/alert_analysis.dir/theory.cpp.o.d"
  "libalert_analysis.a"
  "libalert_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
