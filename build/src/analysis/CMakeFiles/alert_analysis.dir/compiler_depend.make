# Empty compiler generated dependencies file for alert_analysis.
# This may be replaced when dependencies are built.
