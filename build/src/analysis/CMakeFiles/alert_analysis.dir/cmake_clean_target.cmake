file(REMOVE_RECURSE
  "libalert_analysis.a"
)
