# Empty dependencies file for alert_crypto.
# This may be replaced when dependencies are built.
