
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/bitmap.cpp" "src/crypto/CMakeFiles/alert_crypto.dir/bitmap.cpp.o" "gcc" "src/crypto/CMakeFiles/alert_crypto.dir/bitmap.cpp.o.d"
  "/root/repo/src/crypto/cost_model.cpp" "src/crypto/CMakeFiles/alert_crypto.dir/cost_model.cpp.o" "gcc" "src/crypto/CMakeFiles/alert_crypto.dir/cost_model.cpp.o.d"
  "/root/repo/src/crypto/pubkey.cpp" "src/crypto/CMakeFiles/alert_crypto.dir/pubkey.cpp.o" "gcc" "src/crypto/CMakeFiles/alert_crypto.dir/pubkey.cpp.o.d"
  "/root/repo/src/crypto/sha1.cpp" "src/crypto/CMakeFiles/alert_crypto.dir/sha1.cpp.o" "gcc" "src/crypto/CMakeFiles/alert_crypto.dir/sha1.cpp.o.d"
  "/root/repo/src/crypto/symmetric.cpp" "src/crypto/CMakeFiles/alert_crypto.dir/symmetric.cpp.o" "gcc" "src/crypto/CMakeFiles/alert_crypto.dir/symmetric.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/alert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
