file(REMOVE_RECURSE
  "libalert_crypto.a"
)
