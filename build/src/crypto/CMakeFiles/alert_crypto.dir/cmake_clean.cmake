file(REMOVE_RECURSE
  "CMakeFiles/alert_crypto.dir/bitmap.cpp.o"
  "CMakeFiles/alert_crypto.dir/bitmap.cpp.o.d"
  "CMakeFiles/alert_crypto.dir/cost_model.cpp.o"
  "CMakeFiles/alert_crypto.dir/cost_model.cpp.o.d"
  "CMakeFiles/alert_crypto.dir/pubkey.cpp.o"
  "CMakeFiles/alert_crypto.dir/pubkey.cpp.o.d"
  "CMakeFiles/alert_crypto.dir/sha1.cpp.o"
  "CMakeFiles/alert_crypto.dir/sha1.cpp.o.d"
  "CMakeFiles/alert_crypto.dir/symmetric.cpp.o"
  "CMakeFiles/alert_crypto.dir/symmetric.cpp.o.d"
  "libalert_crypto.a"
  "libalert_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
