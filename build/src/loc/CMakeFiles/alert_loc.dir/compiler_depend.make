# Empty compiler generated dependencies file for alert_loc.
# This may be replaced when dependencies are built.
