file(REMOVE_RECURSE
  "CMakeFiles/alert_loc.dir/location_service.cpp.o"
  "CMakeFiles/alert_loc.dir/location_service.cpp.o.d"
  "CMakeFiles/alert_loc.dir/pseudonym.cpp.o"
  "CMakeFiles/alert_loc.dir/pseudonym.cpp.o.d"
  "libalert_loc.a"
  "libalert_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
