file(REMOVE_RECURSE
  "libalert_loc.a"
)
