# Empty compiler generated dependencies file for alert_core.
# This may be replaced when dependencies are built.
