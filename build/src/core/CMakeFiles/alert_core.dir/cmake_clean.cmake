file(REMOVE_RECURSE
  "CMakeFiles/alert_core.dir/experiment.cpp.o"
  "CMakeFiles/alert_core.dir/experiment.cpp.o.d"
  "CMakeFiles/alert_core.dir/scenario.cpp.o"
  "CMakeFiles/alert_core.dir/scenario.cpp.o.d"
  "libalert_core.a"
  "libalert_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
