file(REMOVE_RECURSE
  "libalert_core.a"
)
