# Empty compiler generated dependencies file for alert_routing.
# This may be replaced when dependencies are built.
