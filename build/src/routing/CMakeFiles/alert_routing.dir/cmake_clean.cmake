file(REMOVE_RECURSE
  "CMakeFiles/alert_routing.dir/alarm.cpp.o"
  "CMakeFiles/alert_routing.dir/alarm.cpp.o.d"
  "CMakeFiles/alert_routing.dir/alert_router.cpp.o"
  "CMakeFiles/alert_routing.dir/alert_router.cpp.o.d"
  "CMakeFiles/alert_routing.dir/ao2p.cpp.o"
  "CMakeFiles/alert_routing.dir/ao2p.cpp.o.d"
  "CMakeFiles/alert_routing.dir/geo_forwarding.cpp.o"
  "CMakeFiles/alert_routing.dir/geo_forwarding.cpp.o.d"
  "CMakeFiles/alert_routing.dir/gpsr.cpp.o"
  "CMakeFiles/alert_routing.dir/gpsr.cpp.o.d"
  "CMakeFiles/alert_routing.dir/zap.cpp.o"
  "CMakeFiles/alert_routing.dir/zap.cpp.o.d"
  "CMakeFiles/alert_routing.dir/zone.cpp.o"
  "CMakeFiles/alert_routing.dir/zone.cpp.o.d"
  "libalert_routing.a"
  "libalert_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
