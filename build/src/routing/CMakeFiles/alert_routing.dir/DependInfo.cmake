
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/alarm.cpp" "src/routing/CMakeFiles/alert_routing.dir/alarm.cpp.o" "gcc" "src/routing/CMakeFiles/alert_routing.dir/alarm.cpp.o.d"
  "/root/repo/src/routing/alert_router.cpp" "src/routing/CMakeFiles/alert_routing.dir/alert_router.cpp.o" "gcc" "src/routing/CMakeFiles/alert_routing.dir/alert_router.cpp.o.d"
  "/root/repo/src/routing/ao2p.cpp" "src/routing/CMakeFiles/alert_routing.dir/ao2p.cpp.o" "gcc" "src/routing/CMakeFiles/alert_routing.dir/ao2p.cpp.o.d"
  "/root/repo/src/routing/geo_forwarding.cpp" "src/routing/CMakeFiles/alert_routing.dir/geo_forwarding.cpp.o" "gcc" "src/routing/CMakeFiles/alert_routing.dir/geo_forwarding.cpp.o.d"
  "/root/repo/src/routing/gpsr.cpp" "src/routing/CMakeFiles/alert_routing.dir/gpsr.cpp.o" "gcc" "src/routing/CMakeFiles/alert_routing.dir/gpsr.cpp.o.d"
  "/root/repo/src/routing/zap.cpp" "src/routing/CMakeFiles/alert_routing.dir/zap.cpp.o" "gcc" "src/routing/CMakeFiles/alert_routing.dir/zap.cpp.o.d"
  "/root/repo/src/routing/zone.cpp" "src/routing/CMakeFiles/alert_routing.dir/zone.cpp.o" "gcc" "src/routing/CMakeFiles/alert_routing.dir/zone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/alert_net.dir/DependInfo.cmake"
  "/root/repo/build/src/loc/CMakeFiles/alert_loc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alert_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alert_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
