file(REMOVE_RECURSE
  "libalert_routing.a"
)
