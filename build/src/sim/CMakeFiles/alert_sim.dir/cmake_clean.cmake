file(REMOVE_RECURSE
  "CMakeFiles/alert_sim.dir/event_queue.cpp.o"
  "CMakeFiles/alert_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/alert_sim.dir/simulator.cpp.o"
  "CMakeFiles/alert_sim.dir/simulator.cpp.o.d"
  "libalert_sim.a"
  "libalert_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
