file(REMOVE_RECURSE
  "libalert_sim.a"
)
