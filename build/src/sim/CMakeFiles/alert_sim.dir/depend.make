# Empty dependencies file for alert_sim.
# This may be replaced when dependencies are built.
