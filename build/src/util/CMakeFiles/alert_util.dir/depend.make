# Empty dependencies file for alert_util.
# This may be replaced when dependencies are built.
