file(REMOVE_RECURSE
  "libalert_util.a"
)
