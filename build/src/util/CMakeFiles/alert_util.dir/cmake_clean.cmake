file(REMOVE_RECURSE
  "CMakeFiles/alert_util.dir/cli.cpp.o"
  "CMakeFiles/alert_util.dir/cli.cpp.o.d"
  "CMakeFiles/alert_util.dir/geometry.cpp.o"
  "CMakeFiles/alert_util.dir/geometry.cpp.o.d"
  "CMakeFiles/alert_util.dir/logging.cpp.o"
  "CMakeFiles/alert_util.dir/logging.cpp.o.d"
  "CMakeFiles/alert_util.dir/rng.cpp.o"
  "CMakeFiles/alert_util.dir/rng.cpp.o.d"
  "CMakeFiles/alert_util.dir/stats.cpp.o"
  "CMakeFiles/alert_util.dir/stats.cpp.o.d"
  "CMakeFiles/alert_util.dir/thread_pool.cpp.o"
  "CMakeFiles/alert_util.dir/thread_pool.cpp.o.d"
  "libalert_util.a"
  "libalert_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
