file(REMOVE_RECURSE
  "CMakeFiles/alert_attack.dir/compromise.cpp.o"
  "CMakeFiles/alert_attack.dir/compromise.cpp.o.d"
  "CMakeFiles/alert_attack.dir/intersection_attack.cpp.o"
  "CMakeFiles/alert_attack.dir/intersection_attack.cpp.o.d"
  "CMakeFiles/alert_attack.dir/observer.cpp.o"
  "CMakeFiles/alert_attack.dir/observer.cpp.o.d"
  "CMakeFiles/alert_attack.dir/route_tracer.cpp.o"
  "CMakeFiles/alert_attack.dir/route_tracer.cpp.o.d"
  "CMakeFiles/alert_attack.dir/timing_attack.cpp.o"
  "CMakeFiles/alert_attack.dir/timing_attack.cpp.o.d"
  "CMakeFiles/alert_attack.dir/trace_writer.cpp.o"
  "CMakeFiles/alert_attack.dir/trace_writer.cpp.o.d"
  "CMakeFiles/alert_attack.dir/zone_residency.cpp.o"
  "CMakeFiles/alert_attack.dir/zone_residency.cpp.o.d"
  "libalert_attack.a"
  "libalert_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
