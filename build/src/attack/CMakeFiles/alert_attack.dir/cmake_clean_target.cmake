file(REMOVE_RECURSE
  "libalert_attack.a"
)
