
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/compromise.cpp" "src/attack/CMakeFiles/alert_attack.dir/compromise.cpp.o" "gcc" "src/attack/CMakeFiles/alert_attack.dir/compromise.cpp.o.d"
  "/root/repo/src/attack/intersection_attack.cpp" "src/attack/CMakeFiles/alert_attack.dir/intersection_attack.cpp.o" "gcc" "src/attack/CMakeFiles/alert_attack.dir/intersection_attack.cpp.o.d"
  "/root/repo/src/attack/observer.cpp" "src/attack/CMakeFiles/alert_attack.dir/observer.cpp.o" "gcc" "src/attack/CMakeFiles/alert_attack.dir/observer.cpp.o.d"
  "/root/repo/src/attack/route_tracer.cpp" "src/attack/CMakeFiles/alert_attack.dir/route_tracer.cpp.o" "gcc" "src/attack/CMakeFiles/alert_attack.dir/route_tracer.cpp.o.d"
  "/root/repo/src/attack/timing_attack.cpp" "src/attack/CMakeFiles/alert_attack.dir/timing_attack.cpp.o" "gcc" "src/attack/CMakeFiles/alert_attack.dir/timing_attack.cpp.o.d"
  "/root/repo/src/attack/trace_writer.cpp" "src/attack/CMakeFiles/alert_attack.dir/trace_writer.cpp.o" "gcc" "src/attack/CMakeFiles/alert_attack.dir/trace_writer.cpp.o.d"
  "/root/repo/src/attack/zone_residency.cpp" "src/attack/CMakeFiles/alert_attack.dir/zone_residency.cpp.o" "gcc" "src/attack/CMakeFiles/alert_attack.dir/zone_residency.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/alert_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alert_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alert_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alert_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
