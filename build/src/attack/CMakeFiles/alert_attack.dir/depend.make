# Empty dependencies file for alert_attack.
# This may be replaced when dependencies are built.
