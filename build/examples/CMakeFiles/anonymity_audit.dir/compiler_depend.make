# Empty compiler generated dependencies file for anonymity_audit.
# This may be replaced when dependencies are built.
