file(REMOVE_RECURSE
  "CMakeFiles/anonymity_audit.dir/anonymity_audit.cpp.o"
  "CMakeFiles/anonymity_audit.dir/anonymity_audit.cpp.o.d"
  "anonymity_audit"
  "anonymity_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/anonymity_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
