# Empty dependencies file for alertsim_cli.
# This may be replaced when dependencies are built.
