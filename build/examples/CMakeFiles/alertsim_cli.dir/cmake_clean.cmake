file(REMOVE_RECURSE
  "CMakeFiles/alertsim_cli.dir/alertsim_cli.cpp.o"
  "CMakeFiles/alertsim_cli.dir/alertsim_cli.cpp.o.d"
  "alertsim_cli"
  "alertsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alertsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
