# Empty compiler generated dependencies file for energy_per_packet.
# This may be replaced when dependencies are built.
