file(REMOVE_RECURSE
  "CMakeFiles/energy_per_packet.dir/energy_per_packet.cpp.o"
  "CMakeFiles/energy_per_packet.dir/energy_per_packet.cpp.o.d"
  "energy_per_packet"
  "energy_per_packet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_per_packet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
