# Empty dependencies file for fig16a_delivery_vs_nodes.
# This may be replaced when dependencies are built.
