file(REMOVE_RECURSE
  "CMakeFiles/fig16a_delivery_vs_nodes.dir/fig16a_delivery_vs_nodes.cpp.o"
  "CMakeFiles/fig16a_delivery_vs_nodes.dir/fig16a_delivery_vs_nodes.cpp.o.d"
  "fig16a_delivery_vs_nodes"
  "fig16a_delivery_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16a_delivery_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
