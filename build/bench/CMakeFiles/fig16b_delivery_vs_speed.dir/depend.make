# Empty dependencies file for fig16b_delivery_vs_speed.
# This may be replaced when dependencies are built.
