file(REMOVE_RECURSE
  "CMakeFiles/fig16b_delivery_vs_speed.dir/fig16b_delivery_vs_speed.cpp.o"
  "CMakeFiles/fig16b_delivery_vs_speed.dir/fig16b_delivery_vs_speed.cpp.o.d"
  "fig16b_delivery_vs_speed"
  "fig16b_delivery_vs_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16b_delivery_vs_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
