# Empty dependencies file for ablation_pseudonym_period.
# This may be replaced when dependencies are built.
