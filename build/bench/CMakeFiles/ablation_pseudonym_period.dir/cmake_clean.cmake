file(REMOVE_RECURSE
  "CMakeFiles/ablation_pseudonym_period.dir/ablation_pseudonym_period.cpp.o"
  "CMakeFiles/ablation_pseudonym_period.dir/ablation_pseudonym_period.cpp.o.d"
  "ablation_pseudonym_period"
  "ablation_pseudonym_period.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pseudonym_period.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
