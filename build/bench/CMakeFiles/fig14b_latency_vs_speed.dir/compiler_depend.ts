# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig14b_latency_vs_speed.
