file(REMOVE_RECURSE
  "CMakeFiles/fig14b_latency_vs_speed.dir/fig14b_latency_vs_speed.cpp.o"
  "CMakeFiles/fig14b_latency_vs_speed.dir/fig14b_latency_vs_speed.cpp.o.d"
  "fig14b_latency_vs_speed"
  "fig14b_latency_vs_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14b_latency_vs_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
