# Empty compiler generated dependencies file for fig14b_latency_vs_speed.
# This may be replaced when dependencies are built.
