# Empty dependencies file for fig11_rf_vs_partitions.
# This may be replaced when dependencies are built.
