file(REMOVE_RECURSE
  "CMakeFiles/fig11_rf_vs_partitions.dir/fig11_rf_vs_partitions.cpp.o"
  "CMakeFiles/fig11_rf_vs_partitions.dir/fig11_rf_vs_partitions.cpp.o.d"
  "fig11_rf_vs_partitions"
  "fig11_rf_vs_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_rf_vs_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
