# Empty dependencies file for fig10a_participating_vs_packets.
# This may be replaced when dependencies are built.
