file(REMOVE_RECURSE
  "CMakeFiles/fig10a_participating_vs_packets.dir/fig10a_participating_vs_packets.cpp.o"
  "CMakeFiles/fig10a_participating_vs_packets.dir/fig10a_participating_vs_packets.cpp.o.d"
  "fig10a_participating_vs_packets"
  "fig10a_participating_vs_packets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10a_participating_vs_packets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
