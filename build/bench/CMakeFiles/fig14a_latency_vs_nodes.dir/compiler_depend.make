# Empty compiler generated dependencies file for fig14a_latency_vs_nodes.
# This may be replaced when dependencies are built.
