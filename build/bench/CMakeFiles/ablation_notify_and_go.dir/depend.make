# Empty dependencies file for ablation_notify_and_go.
# This may be replaced when dependencies are built.
