file(REMOVE_RECURSE
  "CMakeFiles/ablation_notify_and_go.dir/ablation_notify_and_go.cpp.o"
  "CMakeFiles/ablation_notify_and_go.dir/ablation_notify_and_go.cpp.o.d"
  "ablation_notify_and_go"
  "ablation_notify_and_go.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_notify_and_go.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
