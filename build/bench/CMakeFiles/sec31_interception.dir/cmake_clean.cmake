file(REMOVE_RECURSE
  "CMakeFiles/sec31_interception.dir/sec31_interception.cpp.o"
  "CMakeFiles/sec31_interception.dir/sec31_interception.cpp.o.d"
  "sec31_interception"
  "sec31_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec31_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
