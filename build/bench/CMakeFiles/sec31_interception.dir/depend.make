# Empty dependencies file for sec31_interception.
# This may be replaced when dependencies are built.
