# Empty dependencies file for fig09a_remaining_analytical.
# This may be replaced when dependencies are built.
