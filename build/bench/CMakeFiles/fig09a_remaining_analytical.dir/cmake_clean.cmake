file(REMOVE_RECURSE
  "CMakeFiles/fig09a_remaining_analytical.dir/fig09a_remaining_analytical.cpp.o"
  "CMakeFiles/fig09a_remaining_analytical.dir/fig09a_remaining_analytical.cpp.o.d"
  "fig09a_remaining_analytical"
  "fig09a_remaining_analytical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09a_remaining_analytical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
