# Empty compiler generated dependencies file for fig15a_hops_vs_nodes.
# This may be replaced when dependencies are built.
