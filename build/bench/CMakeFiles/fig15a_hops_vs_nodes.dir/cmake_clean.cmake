file(REMOVE_RECURSE
  "CMakeFiles/fig15a_hops_vs_nodes.dir/fig15a_hops_vs_nodes.cpp.o"
  "CMakeFiles/fig15a_hops_vs_nodes.dir/fig15a_hops_vs_nodes.cpp.o.d"
  "fig15a_hops_vs_nodes"
  "fig15a_hops_vs_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15a_hops_vs_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
