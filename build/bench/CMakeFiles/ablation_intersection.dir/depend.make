# Empty dependencies file for ablation_intersection.
# This may be replaced when dependencies are built.
