file(REMOVE_RECURSE
  "CMakeFiles/ablation_intersection.dir/ablation_intersection.cpp.o"
  "CMakeFiles/ablation_intersection.dir/ablation_intersection.cpp.o.d"
  "ablation_intersection"
  "ablation_intersection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_intersection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
