# Empty dependencies file for fig13a_speed_partitions.
# This may be replaced when dependencies are built.
