file(REMOVE_RECURSE
  "CMakeFiles/fig13a_speed_partitions.dir/fig13a_speed_partitions.cpp.o"
  "CMakeFiles/fig13a_speed_partitions.dir/fig13a_speed_partitions.cpp.o.d"
  "fig13a_speed_partitions"
  "fig13a_speed_partitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13a_speed_partitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
