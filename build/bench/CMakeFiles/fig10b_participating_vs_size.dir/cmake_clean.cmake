file(REMOVE_RECURSE
  "CMakeFiles/fig10b_participating_vs_size.dir/fig10b_participating_vs_size.cpp.o"
  "CMakeFiles/fig10b_participating_vs_size.dir/fig10b_participating_vs_size.cpp.o.d"
  "fig10b_participating_vs_size"
  "fig10b_participating_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10b_participating_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
