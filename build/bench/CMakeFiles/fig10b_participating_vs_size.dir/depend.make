# Empty dependencies file for fig10b_participating_vs_size.
# This may be replaced when dependencies are built.
