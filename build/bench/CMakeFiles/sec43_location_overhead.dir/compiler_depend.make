# Empty compiler generated dependencies file for sec43_location_overhead.
# This may be replaced when dependencies are built.
