file(REMOVE_RECURSE
  "CMakeFiles/sec43_location_overhead.dir/sec43_location_overhead.cpp.o"
  "CMakeFiles/sec43_location_overhead.dir/sec43_location_overhead.cpp.o.d"
  "sec43_location_overhead"
  "sec43_location_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec43_location_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
