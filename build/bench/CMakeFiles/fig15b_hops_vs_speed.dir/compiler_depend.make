# Empty compiler generated dependencies file for fig15b_hops_vs_speed.
# This may be replaced when dependencies are built.
