file(REMOVE_RECURSE
  "CMakeFiles/fig15b_hops_vs_speed.dir/fig15b_hops_vs_speed.cpp.o"
  "CMakeFiles/fig15b_hops_vs_speed.dir/fig15b_hops_vs_speed.cpp.o.d"
  "fig15b_hops_vs_speed"
  "fig15b_hops_vs_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15b_hops_vs_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
