file(REMOVE_RECURSE
  "CMakeFiles/fig17_movement_models.dir/fig17_movement_models.cpp.o"
  "CMakeFiles/fig17_movement_models.dir/fig17_movement_models.cpp.o.d"
  "fig17_movement_models"
  "fig17_movement_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_movement_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
