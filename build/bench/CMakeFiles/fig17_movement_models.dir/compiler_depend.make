# Empty compiler generated dependencies file for fig17_movement_models.
# This may be replaced when dependencies are built.
