# Empty dependencies file for fig13b_density_vs_speed.
# This may be replaced when dependencies are built.
