file(REMOVE_RECURSE
  "CMakeFiles/fig13b_density_vs_speed.dir/fig13b_density_vs_speed.cpp.o"
  "CMakeFiles/fig13b_density_vs_speed.dir/fig13b_density_vs_speed.cpp.o.d"
  "fig13b_density_vs_speed"
  "fig13b_density_vs_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13b_density_vs_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
