# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig13b_density_vs_speed.
