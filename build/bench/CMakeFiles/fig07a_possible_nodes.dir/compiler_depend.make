# Empty compiler generated dependencies file for fig07a_possible_nodes.
# This may be replaced when dependencies are built.
