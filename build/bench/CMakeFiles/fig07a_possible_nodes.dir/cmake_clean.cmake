file(REMOVE_RECURSE
  "CMakeFiles/fig07a_possible_nodes.dir/fig07a_possible_nodes.cpp.o"
  "CMakeFiles/fig07a_possible_nodes.dir/fig07a_possible_nodes.cpp.o.d"
  "fig07a_possible_nodes"
  "fig07a_possible_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07a_possible_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
