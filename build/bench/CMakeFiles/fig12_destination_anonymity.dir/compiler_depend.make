# Empty compiler generated dependencies file for fig12_destination_anonymity.
# This may be replaced when dependencies are built.
