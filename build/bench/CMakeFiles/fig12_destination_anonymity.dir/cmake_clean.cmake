file(REMOVE_RECURSE
  "CMakeFiles/fig12_destination_anonymity.dir/fig12_destination_anonymity.cpp.o"
  "CMakeFiles/fig12_destination_anonymity.dir/fig12_destination_anonymity.cpp.o.d"
  "fig12_destination_anonymity"
  "fig12_destination_anonymity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_destination_anonymity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
