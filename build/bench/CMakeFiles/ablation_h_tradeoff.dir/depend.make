# Empty dependencies file for ablation_h_tradeoff.
# This may be replaced when dependencies are built.
