file(REMOVE_RECURSE
  "CMakeFiles/ablation_h_tradeoff.dir/ablation_h_tradeoff.cpp.o"
  "CMakeFiles/ablation_h_tradeoff.dir/ablation_h_tradeoff.cpp.o.d"
  "ablation_h_tradeoff"
  "ablation_h_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_h_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
