file(REMOVE_RECURSE
  "CMakeFiles/fig09b_remaining_speed.dir/fig09b_remaining_speed.cpp.o"
  "CMakeFiles/fig09b_remaining_speed.dir/fig09b_remaining_speed.cpp.o.d"
  "fig09b_remaining_speed"
  "fig09b_remaining_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09b_remaining_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
