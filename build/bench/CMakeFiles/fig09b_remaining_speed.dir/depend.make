# Empty dependencies file for fig09b_remaining_speed.
# This may be replaced when dependencies are built.
