file(REMOVE_RECURSE
  "CMakeFiles/fig07b_random_forwarders.dir/fig07b_random_forwarders.cpp.o"
  "CMakeFiles/fig07b_random_forwarders.dir/fig07b_random_forwarders.cpp.o.d"
  "fig07b_random_forwarders"
  "fig07b_random_forwarders.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07b_random_forwarders.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
