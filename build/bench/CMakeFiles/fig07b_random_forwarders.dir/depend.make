# Empty dependencies file for fig07b_random_forwarders.
# This may be replaced when dependencies are built.
