# Empty dependencies file for pseudonym_test.
# This may be replaced when dependencies are built.
