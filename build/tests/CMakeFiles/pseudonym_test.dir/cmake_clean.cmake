file(REMOVE_RECURSE
  "CMakeFiles/pseudonym_test.dir/loc/pseudonym_test.cpp.o"
  "CMakeFiles/pseudonym_test.dir/loc/pseudonym_test.cpp.o.d"
  "pseudonym_test"
  "pseudonym_test.pdb"
  "pseudonym_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pseudonym_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
