# Empty compiler generated dependencies file for trace_writer_test.
# This may be replaced when dependencies are built.
