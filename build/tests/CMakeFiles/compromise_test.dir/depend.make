# Empty dependencies file for compromise_test.
# This may be replaced when dependencies are built.
