file(REMOVE_RECURSE
  "CMakeFiles/compromise_test.dir/attack/compromise_test.cpp.o"
  "CMakeFiles/compromise_test.dir/attack/compromise_test.cpp.o.d"
  "compromise_test"
  "compromise_test.pdb"
  "compromise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compromise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
