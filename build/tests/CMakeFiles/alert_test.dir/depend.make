# Empty dependencies file for alert_test.
# This may be replaced when dependencies are built.
