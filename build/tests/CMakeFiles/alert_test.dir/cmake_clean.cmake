file(REMOVE_RECURSE
  "CMakeFiles/alert_test.dir/routing/alert_test.cpp.o"
  "CMakeFiles/alert_test.dir/routing/alert_test.cpp.o.d"
  "alert_test"
  "alert_test.pdb"
  "alert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
