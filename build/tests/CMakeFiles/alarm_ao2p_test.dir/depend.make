# Empty dependencies file for alarm_ao2p_test.
# This may be replaced when dependencies are built.
