file(REMOVE_RECURSE
  "CMakeFiles/alarm_ao2p_test.dir/routing/alarm_ao2p_test.cpp.o"
  "CMakeFiles/alarm_ao2p_test.dir/routing/alarm_ao2p_test.cpp.o.d"
  "alarm_ao2p_test"
  "alarm_ao2p_test.pdb"
  "alarm_ao2p_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alarm_ao2p_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
