file(REMOVE_RECURSE
  "CMakeFiles/pubkey_test.dir/crypto/pubkey_test.cpp.o"
  "CMakeFiles/pubkey_test.dir/crypto/pubkey_test.cpp.o.d"
  "pubkey_test"
  "pubkey_test.pdb"
  "pubkey_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pubkey_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
