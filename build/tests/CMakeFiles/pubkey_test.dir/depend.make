# Empty dependencies file for pubkey_test.
# This may be replaced when dependencies are built.
