# Empty compiler generated dependencies file for delivery_sweep_test.
# This may be replaced when dependencies are built.
