file(REMOVE_RECURSE
  "CMakeFiles/delivery_sweep_test.dir/routing/delivery_sweep_test.cpp.o"
  "CMakeFiles/delivery_sweep_test.dir/routing/delivery_sweep_test.cpp.o.d"
  "delivery_sweep_test"
  "delivery_sweep_test.pdb"
  "delivery_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delivery_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
