# Empty compiler generated dependencies file for zap_test.
# This may be replaced when dependencies are built.
