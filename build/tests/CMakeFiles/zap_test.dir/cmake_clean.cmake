file(REMOVE_RECURSE
  "CMakeFiles/zap_test.dir/routing/zap_test.cpp.o"
  "CMakeFiles/zap_test.dir/routing/zap_test.cpp.o.d"
  "zap_test"
  "zap_test.pdb"
  "zap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
