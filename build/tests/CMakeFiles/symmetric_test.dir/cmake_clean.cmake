file(REMOVE_RECURSE
  "CMakeFiles/symmetric_test.dir/crypto/symmetric_test.cpp.o"
  "CMakeFiles/symmetric_test.dir/crypto/symmetric_test.cpp.o.d"
  "symmetric_test"
  "symmetric_test.pdb"
  "symmetric_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/symmetric_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
