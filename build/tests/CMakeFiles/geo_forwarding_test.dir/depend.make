# Empty dependencies file for geo_forwarding_test.
# This may be replaced when dependencies are built.
