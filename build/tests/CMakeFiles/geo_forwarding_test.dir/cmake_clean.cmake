file(REMOVE_RECURSE
  "CMakeFiles/geo_forwarding_test.dir/routing/geo_forwarding_test.cpp.o"
  "CMakeFiles/geo_forwarding_test.dir/routing/geo_forwarding_test.cpp.o.d"
  "geo_forwarding_test"
  "geo_forwarding_test.pdb"
  "geo_forwarding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_forwarding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
