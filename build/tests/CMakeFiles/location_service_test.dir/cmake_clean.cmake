file(REMOVE_RECURSE
  "CMakeFiles/location_service_test.dir/loc/location_service_test.cpp.o"
  "CMakeFiles/location_service_test.dir/loc/location_service_test.cpp.o.d"
  "location_service_test"
  "location_service_test.pdb"
  "location_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/location_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
