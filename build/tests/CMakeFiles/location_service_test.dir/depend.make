# Empty dependencies file for location_service_test.
# This may be replaced when dependencies are built.
