
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/rng_test.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/rng_test.dir/util/rng_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/alert_core.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/alert_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/alert_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/alert_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/loc/CMakeFiles/alert_loc.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/alert_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/alert_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/alert_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/alert_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
