file(REMOVE_RECURSE
  "CMakeFiles/gpsr_test.dir/routing/gpsr_test.cpp.o"
  "CMakeFiles/gpsr_test.dir/routing/gpsr_test.cpp.o.d"
  "gpsr_test"
  "gpsr_test.pdb"
  "gpsr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
