# Empty compiler generated dependencies file for gpsr_test.
# This may be replaced when dependencies are built.
