file(REMOVE_RECURSE
  "CMakeFiles/alert_fallback_test.dir/routing/alert_fallback_test.cpp.o"
  "CMakeFiles/alert_fallback_test.dir/routing/alert_fallback_test.cpp.o.d"
  "alert_fallback_test"
  "alert_fallback_test.pdb"
  "alert_fallback_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alert_fallback_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
