# Empty compiler generated dependencies file for alert_fallback_test.
# This may be replaced when dependencies are built.
